// Incremental experiment analytics and the any-time results snapshot.
//
// The batch pipeline derives the paper's figures from fully
// materialized verdict vectors; these folds derive the same data
// products one verdict at a time, so the streaming pipeline can drop
// each CNF and verdict the moment it is analyzed (O(open windows)
// memory) and surface a valid LiveReport at every watermark.  Both
// run_experiment paths — batch and streaming — run on the same folds,
// so their products cannot diverge: everything a fold accumulates is
// order-independent (counts and set unions), and the one order-bearing
// product (Figure 2's per-CNF sample vector) is key-sorted at
// finalization, which is exactly the batch iteration order.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "analysis/churn_stats.h"
#include "analysis/experiment.h"
#include "tomo/cnf_builder.h"
#include "tomo/engine.h"

namespace ct::analysis {

/// Any-time snapshot of a streaming run, valid at a watermark: the
/// verdict counts cover exactly the CNFs of windows sealed by the
/// watermark (in emitted-CNF order), and the churn stats cover exactly
/// the measurement days below it — so every LiveReport equals the batch
/// computation over its sealed prefix (the property suite holds this).
struct LiveReport {
  /// Every window ending at or before this day is included.
  util::Day watermark = 0;
  /// CNFs analyzed so far (all granularities).
  std::int64_t cnfs_analyzed = 0;
  /// Verdict counts so far: overall and per URL.
  SolutionSplit overall;
  std::map<std::int32_t, SolutionSplit> by_url;
  /// Per-AS verdict counts so far: CNFs exactly naming the AS a censor
  /// (class 1) / listing it as a potential censor (class 2).
  std::map<topo::AsId, std::int64_t> exact_censor_cnfs;
  std::map<topo::AsId, std::int64_t> potential_censor_cnfs;
  /// Figure-3 churn stats over the sealed days.
  ChurnStats churn;
};

/// The LiveReport verdict counts as an incremental fold — the one
/// implementation behind both the any-time snapshots (the pipeline's
/// release path) and VerdictFold's figure products, so the two can
/// never drift.  Fixed-size up to the URL/AS key spaces; retains no
/// per-CNF state.
struct LiveCounts {
  std::int64_t cnfs = 0;
  SolutionSplit overall;
  std::map<std::int32_t, SolutionSplit> by_url;
  std::map<topo::AsId, std::int64_t> exact_censor_cnfs;
  std::map<topo::AsId, std::int64_t> potential_censor_cnfs;

  void add(const tomo::CnfVerdict& verdict);
  /// Copies the counts into `report` (watermark/churn are the caller's).
  void fill(LiveReport& report) const;
};

/// Incremental fold of the main pass's verdicts into the Figure-1/2
/// data products (a LiveCounts plus the figure-only tallies).
class VerdictFold {
 public:
  explicit VerdictFold(std::vector<util::Granularity> fig1_granularities);

  void add(const tomo::CnfVerdict& verdict);

  std::int64_t total() const { return counts_.cnfs; }
  Fig1Data fig1() const;
  /// Figure 2: reduction samples in CnfKey order (the batch order).
  Fig2Data fig2() const;

 private:
  LiveCounts counts_;
  Fig1Data fig1_;  // overall filled from counts_ at fig1()
  std::vector<std::pair<tomo::CnfKey, double>> fig2_samples_;
  std::int64_t fig2_no_elimination_ = 0;
};

/// Incremental Figure-4 histogram fold over the churn-ablation pass's
/// verdicts (order-independent: counts only).
class Fig4Fold {
 public:
  explicit Fig4Fold(const std::vector<util::Granularity>& granularities);

  void add(const tomo::CnfVerdict& verdict);
  Fig4Data finalize() const;

 private:
  Fig4Data fig4_;
  std::int64_t five_plus_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace ct::analysis
