// Incremental experiment analytics and the any-time results snapshot.
//
// The batch pipeline derives the paper's figures from fully
// materialized verdict vectors; these folds derive the same data
// products one verdict at a time, so the streaming pipeline can drop
// each CNF and verdict the moment it is analyzed (O(open windows)
// memory) and surface a valid LiveReport at every watermark.  Both
// run_experiment paths — batch and streaming — run on the same folds,
// so their products cannot diverge: everything a fold accumulates is
// order-independent (counts and set unions), and the one order-bearing
// product (Figure 2's per-CNF sample vector) is key-sorted at
// finalization, which is exactly the batch iteration order.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "analysis/churn_stats.h"
#include "analysis/experiment.h"
#include "analysis/truth_tracker.h"
#include "tomo/cnf_builder.h"
#include "tomo/engine.h"
#include "tomo/leakage.h"

namespace ct::analysis {

/// Any-time snapshot of a streaming run, valid at a watermark: the
/// verdict counts cover exactly the CNFs of windows sealed by the
/// watermark (in emitted-CNF order), and the churn stats cover exactly
/// the measurement days below it — so every LiveReport equals the batch
/// computation over its sealed prefix (the property suite holds this).
struct LiveReport {
  /// Every window ending at or before this day is included.
  util::Day watermark = 0;
  /// CNFs analyzed so far (all granularities).
  std::int64_t cnfs_analyzed = 0;
  /// Verdict counts so far: overall and per URL.
  SolutionSplit overall;
  std::map<std::int32_t, SolutionSplit> by_url;
  /// Per-AS verdict counts so far: CNFs exactly naming the AS a censor
  /// (class 1) / listing it as a potential censor (class 2).
  std::map<topo::AsId, std::int64_t> exact_censor_cnfs;
  std::map<topo::AsId, std::int64_t> potential_censor_cnfs;
  /// Figure-3 churn stats over the sealed days.
  ChurnStats churn;
};

/// The LiveReport verdict counts as an incremental fold — the one
/// implementation behind both the any-time snapshots (the pipeline's
/// release path) and VerdictFold's figure products, so the two can
/// never drift.  Fixed-size up to the URL/AS key spaces; retains no
/// per-CNF state.
struct LiveCounts {
  std::int64_t cnfs = 0;
  SolutionSplit overall;
  std::map<std::int32_t, SolutionSplit> by_url;
  std::map<topo::AsId, std::int64_t> exact_censor_cnfs;
  std::map<topo::AsId, std::int64_t> potential_censor_cnfs;

  void add(const tomo::CnfVerdict& verdict);
  /// Copies the counts into `report` (watermark/churn are the caller's).
  void fill(LiveReport& report) const;

  /// Checkpoint support (analysis/checkpoint.h).
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);
};

/// Incremental fold of the main pass's verdicts into the Figure-1/2
/// data products (a LiveCounts plus the figure-only tallies).
class VerdictFold {
 public:
  explicit VerdictFold(std::vector<util::Granularity> fig1_granularities);

  void add(const tomo::CnfVerdict& verdict);

  std::int64_t total() const { return counts_.cnfs; }
  Fig1Data fig1() const;
  /// Figure 2: reduction samples in CnfKey order (the batch order).
  Fig2Data fig2() const;

  /// The LiveCounts accumulated so far — the monitor's snapshot server
  /// fills LiveReports from here without a second fold.
  const LiveCounts& counts() const { return counts_; }

  /// Checkpoint support (analysis/checkpoint.h): persists every
  /// accumulator; load() requires a fold constructed with the same
  /// fig1 granularity set (the envelope fingerprint guards this).
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  LiveCounts counts_;
  Fig1Data fig1_;  // overall filled from counts_ at fig1()
  std::vector<std::pair<tomo::CnfKey, double>> fig2_samples_;
  std::int64_t fig2_no_elimination_ = 0;
};

/// Incremental Figure-4 histogram fold over the churn-ablation pass's
/// verdicts (order-independent: counts only).
class Fig4Fold {
 public:
  explicit Fig4Fold(const std::vector<util::Granularity>& granularities);

  void add(const tomo::CnfVerdict& verdict);
  Fig4Data finalize() const;

  /// Checkpoint support (analysis/checkpoint.h); the granularity set is
  /// construction-time config, restored keys must match (SerdeError).
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  Fig4Data fig4_;
  std::int64_t five_plus_ = 0;
  std::int64_t total_ = 0;
};

/// The incremental folds every data product downstream of the main SAT
/// pass is derived from.  Batch feeds them from the materialized
/// verdict vectors (key order); streaming and the resident monitor feed
/// them from the any-time callbacks (emission order).  Every fold is
/// order-independent (or key-sorts at finalization), so all paths are
/// byte-identical by construction.
struct ExperimentFolds {
  explicit ExperimentFolds(const ExperimentOptions& options)
      : verdicts(options.fig1_granularities), fig4(options.fig1_granularities) {}

  VerdictFold verdicts;
  tomo::CensorSupport support;
  tomo::LeakageFold leakage;
  Fig4Fold fig4;

  void add_main(const tomo::TomoCnf& cnf, const tomo::CnfVerdict& verdict) {
    verdicts.add(verdict);
    support.add(verdict);
    leakage.add(cnf, verdict);
  }

  /// Checkpoint support (analysis/checkpoint.h): all four folds.
  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);
};

/// Derives the full ExperimentResult (tables, figures, censor lists,
/// leakage, ground-truth scores) from sealed folds plus the run-wide
/// sink products.  This is the one finalization path: run_experiment
/// (batch and streaming) and MonitorEngine::finalize both end here, so
/// a resumed monitor run reproduces the batch report byte for byte.
/// `engine_stats` is NOT filled in — the caller owns its SAT counters.
ExperimentResult finalize_experiment_result(Scenario& scenario,
                                            const ExperimentOptions& options,
                                            const ExperimentFolds& folds,
                                            const iclab::DatasetSummary& summary,
                                            const tomo::ClauseBuildStats& clause_stats,
                                            const TruthTracker& truth_tracker,
                                            ChurnStats fig3);

}  // namespace ct::analysis
