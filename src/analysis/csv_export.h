// CSV export of experiment results — the machine-readable counterpart of
// the text reports, for regenerating the paper's figures with any
// plotting tool.
//
// Each function writes one figure's data series with a header row;
// write_all_csv() drops every series into a directory as fig1a.csv,
// fig1b.csv, fig2_cdf.csv, fig3.csv, fig4.csv, table2.csv, table3.csv,
// fig5_flows.csv.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/experiment.h"

namespace ct::analysis {

void write_fig1a_csv(std::ostream& out, const ExperimentResult& result);
void write_fig1b_csv(std::ostream& out, const ExperimentResult& result);
/// One row per multi-solution CNF: reduction percent + CDF position.
void write_fig2_csv(std::ostream& out, const ExperimentResult& result);
void write_fig3_csv(std::ostream& out, const ExperimentResult& result);
void write_fig4_csv(std::ostream& out, const ExperimentResult& result);
void write_table2_csv(std::ostream& out, const ExperimentResult& result);
void write_table3_csv(std::ostream& out, const ExperimentResult& result);
void write_fig5_csv(std::ostream& out, const ExperimentResult& result);

/// Writes every series to `directory` (created if missing).  Returns the
/// number of files written.
int write_all_csv(const std::string& directory, const ExperimentResult& result);

}  // namespace ct::analysis
