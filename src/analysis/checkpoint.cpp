#include "analysis/checkpoint.h"

#include <cstdio>
#include <utility>

#include "util/rng.h"

namespace ct::analysis {

namespace {

void save_as_vec(util::ByteWriter& w, const std::vector<topo::AsId>& v) {
  util::save_vec(w, v, [](util::ByteWriter& w, topo::AsId as) { w.i32(as); });
}

void save_split(util::ByteWriter& w, const SolutionSplit& split) {
  for (const std::int64_t c : split.count) w.i64(c);
}

SolutionSplit load_split(util::ByteReader& r) {
  SolutionSplit split;
  for (std::int64_t& c : split.count) c = r.i64();
  return split;
}

void save_gran(util::ByteWriter& w, util::Granularity g) {
  w.u8(static_cast<std::uint8_t>(g));
}

util::Granularity load_gran(util::ByteReader& r) {
  return static_cast<util::Granularity>(r.u8());
}

void save_score(util::ByteWriter& w, const tomo::CensorScore& score) {
  w.i32(score.true_positives);
  w.i32(score.false_positives);
  w.i32(score.false_negatives);
  save_as_vec(w, score.false_positive_ases);
  save_as_vec(w, score.false_negative_ases);
}

void save_leakage(util::ByteWriter& w, const tomo::LeakageReport& leakage) {
  save_as_vec(w, leakage.censors);
  util::save_map(
      w, leakage.by_censor, [](util::ByteWriter& w, topo::AsId as) { w.i32(as); },
      [](util::ByteWriter& w, const tomo::CensorLeaks& leaks) {
        w.i32(leaks.censor);
        util::save_set(w, leaks.victim_ases,
                       [](util::ByteWriter& w, topo::AsId as) { w.i32(as); });
        util::save_set(w, leaks.victim_countries,
                       [](util::ByteWriter& w, topo::CountryId c) { w.i32(c); });
      });
  util::save_map(
      w, leakage.country_flow,
      [](util::ByteWriter& w, const std::pair<topo::CountryId, topo::CountryId>& key) {
        w.i32(key.first);
        w.i32(key.second);
      },
      [](util::ByteWriter& w, std::int64_t n) { w.i64(n); });
}

}  // namespace

std::uint64_t config_fingerprint(const Scenario& scenario, const ExperimentOptions& options) {
  const ScenarioConfig& config = scenario.config();
  const iclab::PlatformConfig& platform = config.platform;
  std::uint64_t h = 0x43544350u;  // domain-separate from other mix64 users
  h = util::mix64(h, config.seed);
  h = util::mix64(h, static_cast<std::uint64_t>(platform.num_days));
  h = util::mix64(h, static_cast<std::uint64_t>(platform.epochs_per_day));
  h = util::mix64(h, static_cast<std::uint64_t>(platform.num_vantages));
  h = util::mix64(h, static_cast<std::uint64_t>(platform.vp_nodes_per_as));
  h = util::mix64(h, static_cast<std::uint64_t>(platform.num_urls));
  h = util::mix64(h, static_cast<std::uint64_t>(platform.num_dest_ases));
  h = util::mix64(h, std::bit_cast<std::uint64_t>(platform.test_prob));
  h = util::mix64(h, std::bit_cast<std::uint64_t>(platform.flutter_prob));
  // Scenario regime: ground truth and path emission both depend on it,
  // so a checkpoint written under one regime must refuse to resume
  // under another.
  h = util::mix64(h, static_cast<std::uint64_t>(config.regime.regime) + 1);
  h = util::mix64(h, std::bit_cast<std::uint64_t>(config.regime.ingress_fraction));
  h = util::mix64(h, std::bit_cast<std::uint64_t>(config.regime.dither_fraction));
  h = util::mix64(h, static_cast<std::uint64_t>(config.regime.adaptive_period_days));
  h = util::mix64(h, static_cast<std::uint64_t>(options.min_support));
  h = util::mix64(h, options.analysis.count_cap);
  for (const util::Granularity g : options.fig1_granularities) {
    h = util::mix64(h, static_cast<std::uint64_t>(g) + 1);
  }
  return h;
}

std::string seal_checkpoint(std::uint64_t fingerprint, util::Day watermark,
                            const std::string& payload) {
  util::ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(fingerprint);
  w.i32(watermark);
  w.str(payload);
  return w.take();
}

OpenedCheckpoint open_checkpoint(const std::string& bytes,
                                 std::uint64_t expected_fingerprint) {
  try {
    util::ByteReader r(bytes);
    if (r.u32() != kCheckpointMagic) {
      throw CheckpointError("checkpoint: bad magic (not a checkpoint file)");
    }
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
      throw CheckpointError("checkpoint: unsupported format version " +
                            std::to_string(version) + " (this build reads version " +
                            std::to_string(kCheckpointVersion) + ")");
    }
    const std::uint64_t fingerprint = r.u64();
    if (fingerprint != expected_fingerprint) {
      throw CheckpointError(
          "checkpoint: config fingerprint mismatch (written under a different "
          "scenario or analysis configuration)");
    }
    OpenedCheckpoint opened;
    opened.watermark = r.i32();
    opened.payload = r.str();
    r.expect_end();
    return opened;
  } catch (const util::SerdeError& e) {
    throw CheckpointError(std::string("checkpoint: ") + e.what());
  }
}

void write_checkpoint_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw CheckpointError("checkpoint: cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " over " + path);
  }
}

std::string read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw CheckpointError("checkpoint: cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw CheckpointError("checkpoint: read error on " + path);
  return bytes;
}

void save_clause_stats(util::ByteWriter& w, const tomo::ClauseBuildStats& stats) {
  w.i64(stats.measurements);
  w.i64(stats.dropped_no_mapping);
  w.i64(stats.dropped_traceroute_error);
  w.i64(stats.dropped_ambiguous_gap);
  w.i64(stats.dropped_divergent_paths);
  w.i64(stats.usable_measurements);
  w.i64(stats.clauses);
}

tomo::ClauseBuildStats load_clause_stats(util::ByteReader& r) {
  tomo::ClauseBuildStats stats;
  stats.measurements = r.i64();
  stats.dropped_no_mapping = r.i64();
  stats.dropped_traceroute_error = r.i64();
  stats.dropped_ambiguous_gap = r.i64();
  stats.dropped_divergent_paths = r.i64();
  stats.usable_measurements = r.i64();
  stats.clauses = r.i64();
  return stats;
}

void save_churn_stats(util::ByteWriter& w, const ChurnStats& stats) {
  util::save_map(w, stats.distinct_paths, save_gran,
                 [](util::ByteWriter& w, const util::BucketedCounts& counts) {
                   counts.save(w);
                 });
  util::save_map(w, stats.changed_fraction, save_gran,
                 [](util::ByteWriter& w, double f) { w.f64(f); });
  util::save_map(
      w, stats.changed_by_dest_class,
      [](util::ByteWriter& w, topo::AsClass cls) { w.u8(static_cast<std::uint8_t>(cls)); },
      [](util::ByteWriter& w, double f) { w.f64(f); });
}

ChurnStats load_churn_stats(util::ByteReader& r) {
  ChurnStats stats;
  util::load_map(r, stats.distinct_paths, load_gran, [](util::ByteReader& r) {
    util::BucketedCounts counts(4);
    counts.load(r);
    return counts;
  });
  util::load_map(r, stats.changed_fraction, load_gran,
                 [](util::ByteReader& r) { return r.f64(); });
  util::load_map(
      r, stats.changed_by_dest_class,
      [](util::ByteReader& r) { return static_cast<topo::AsClass>(r.u8()); },
      [](util::ByteReader& r) { return r.f64(); });
  return stats;
}

void save_live_report(util::ByteWriter& w, const LiveReport& report) {
  w.i32(report.watermark);
  w.i64(report.cnfs_analyzed);
  save_split(w, report.overall);
  util::save_map(
      w, report.by_url, [](util::ByteWriter& w, std::int32_t url) { w.i32(url); },
      save_split);
  util::save_map(
      w, report.exact_censor_cnfs, [](util::ByteWriter& w, topo::AsId as) { w.i32(as); },
      [](util::ByteWriter& w, std::int64_t n) { w.i64(n); });
  util::save_map(
      w, report.potential_censor_cnfs, [](util::ByteWriter& w, topo::AsId as) { w.i32(as); },
      [](util::ByteWriter& w, std::int64_t n) { w.i64(n); });
  save_churn_stats(w, report.churn);
}

LiveReport load_live_report(util::ByteReader& r) {
  LiveReport report;
  report.watermark = r.i32();
  report.cnfs_analyzed = r.i64();
  report.overall = load_split(r);
  util::load_map(
      r, report.by_url, [](util::ByteReader& r) { return r.i32(); }, load_split);
  util::load_map(
      r, report.exact_censor_cnfs, [](util::ByteReader& r) { return topo::AsId{r.i32()}; },
      [](util::ByteReader& r) { return r.i64(); });
  util::load_map(
      r, report.potential_censor_cnfs,
      [](util::ByteReader& r) { return topo::AsId{r.i32()}; },
      [](util::ByteReader& r) { return r.i64(); });
  report.churn = load_churn_stats(r);
  return report;
}

void save_engine_stats(util::ByteWriter& w, const tomo::EngineStats& stats) {
  w.u64(stats.cnf_loads);
  w.u64(stats.solve_calls);
  w.u64(stats.models_found);
  w.u64(stats.delta_loads);
  w.u64(stats.clauses_retracted);
  w.u64(stats.clauses_reused);
  w.u64(stats.fresh_clauses);
  w.u64(stats.clauses_added);
  w.u32(stats.arenas);
  w.u64(stats.snapshots_published);
  w.u64(stats.snapshot_reads);
  w.u64(stats.snapshot_stale_reads);
  w.u64(stats.snapshot_peak_readers);
  for (const sat::BackendCounters& b : stats.backends) {
    w.u64(b.selected);
    w.u64(b.served);
    w.u64(b.escalated);
  }
  w.u64(stats.portfolio.races);
  w.u64(stats.portfolio.probe_decided);
  for (const std::uint64_t won : stats.portfolio.won) w.u64(won);
  w.u64(stats.portfolio.winner_conflicts);
  w.u64(stats.portfolio.wasted_conflicts);
  w.u64(stats.portfolio.cancels);
  w.u64(stats.portfolio.cancel_ns_total);
  w.u64(stats.portfolio.cancel_ns_max);
}

tomo::EngineStats load_engine_stats(util::ByteReader& r) {
  tomo::EngineStats stats;
  stats.cnf_loads = r.u64();
  stats.solve_calls = r.u64();
  stats.models_found = r.u64();
  stats.delta_loads = r.u64();
  stats.clauses_retracted = r.u64();
  stats.clauses_reused = r.u64();
  stats.fresh_clauses = r.u64();
  stats.clauses_added = r.u64();
  stats.arenas = r.u32();
  stats.snapshots_published = r.u64();
  stats.snapshot_reads = r.u64();
  stats.snapshot_stale_reads = r.u64();
  stats.snapshot_peak_readers = r.u64();
  for (sat::BackendCounters& b : stats.backends) {
    b.selected = r.u64();
    b.served = r.u64();
    b.escalated = r.u64();
  }
  stats.portfolio.races = r.u64();
  stats.portfolio.probe_decided = r.u64();
  for (std::uint64_t& won : stats.portfolio.won) won = r.u64();
  stats.portfolio.winner_conflicts = r.u64();
  stats.portfolio.wasted_conflicts = r.u64();
  stats.portfolio.cancels = r.u64();
  stats.portfolio.cancel_ns_total = r.u64();
  stats.portfolio.cancel_ns_max = r.u64();
  return stats;
}

std::string serialize_report(const ExperimentResult& result) {
  util::ByteWriter w;

  // Table 1.
  w.i64(result.table1.measurements);
  w.i64(result.table1.unique_urls);
  w.i64(result.table1.vantage_ases);
  w.i64(result.table1.dest_ases);
  w.i64(result.table1.countries);
  w.i64(result.table1.unreachable);
  for (const std::int64_t c : result.table1.anomaly_counts) w.i64(c);
  save_clause_stats(w, result.table1.clause_stats);

  // Figure 1.
  util::save_map(w, result.fig1.by_granularity, save_gran, save_split);
  util::save_map(
      w, result.fig1.by_anomaly,
      [](util::ByteWriter& w, censor::Anomaly a) { w.u8(static_cast<std::uint8_t>(a)); },
      save_split);
  save_split(w, result.fig1.overall);

  // Figure 2.
  util::save_vec(w, result.fig2.reduction_percent,
                 [](util::ByteWriter& w, double pct) { w.f64(pct); });
  w.f64(result.fig2.mean_reduction_percent);
  w.f64(result.fig2.fraction_no_elimination);
  w.i64(result.fig2.multi_solution_cnfs);

  // Figures 3 and 4.
  save_churn_stats(w, result.fig3);
  util::save_map(w, result.fig4.solution_counts, save_gran,
                 [](util::ByteWriter& w, const util::BucketedCounts& counts) {
                   counts.save(w);
                 });
  w.f64(result.fig4.fraction_five_plus);

  // Tables 2 and 3.
  util::save_vec(w, result.table2, [](util::ByteWriter& w, const Table2Row& row) {
    w.str(row.country_code);
    util::save_vec(w, row.censor_asns, [](util::ByteWriter& w, std::int32_t asn) {
      w.i32(asn);
    });
    util::save_vec(w, row.anomalies, [](util::ByteWriter& w, censor::Anomaly a) {
      w.u8(static_cast<std::uint8_t>(a));
    });
  });
  util::save_vec(w, result.table3, [](util::ByteWriter& w, const Table3Row& row) {
    w.i32(row.asn);
    w.str(row.country_code);
    w.i64(row.leaked_ases);
    w.i64(row.leaked_countries);
  });

  // Figure 5.
  util::save_vec(w, result.fig5.flows, [](util::ByteWriter& w, const Fig5Flow& flow) {
    w.str(flow.censor_country);
    w.str(flow.victim_country);
    w.i64(flow.weight);
    w.b(flow.same_region);
  });
  util::save_map(
      w, result.fig5.censors_per_country,
      [](util::ByteWriter& w, const std::string& code) { w.str(code); },
      [](util::ByteWriter& w, std::int64_t n) { w.i64(n); });
  w.f64(result.fig5.same_region_weight_fraction);

  // Censors, leakage, scores.
  save_as_vec(w, result.identified_censors);
  w.i32(result.censor_countries);
  save_leakage(w, result.leakage);
  save_score(w, result.score_all);
  save_score(w, result.score_observable);
  save_as_vec(w, result.observable_censors);
  w.i64(result.total_cnfs);

  return w.take();
}

}  // namespace ct::analysis
