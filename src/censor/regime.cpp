#include "censor/regime.h"

#include <algorithm>
#include <stdexcept>

#include "util/env.h"
#include "util/rng.h"

namespace ct::censor {

std::string to_string(ScenarioRegime regime) {
  switch (regime) {
    case ScenarioRegime::kBaseline: return "baseline";
    case ScenarioRegime::kRoutingInduced: return "routing";
    case ScenarioRegime::kMultipath: return "multipath";
    case ScenarioRegime::kAdaptive: return "adaptive";
    case ScenarioRegime::kPathDiversity: return "pathdiv";
  }
  return "?";
}

std::optional<ScenarioRegime> parse_regime(std::string_view value) {
  for (const ScenarioRegime regime : all_regimes()) {
    if (value == to_string(regime)) return regime;
  }
  return std::nullopt;
}

std::vector<ScenarioRegime> all_regimes() {
  return {ScenarioRegime::kBaseline, ScenarioRegime::kRoutingInduced, ScenarioRegime::kMultipath,
          ScenarioRegime::kAdaptive, ScenarioRegime::kPathDiversity};
}

ScenarioRegime regime_from_env(ScenarioRegime fallback) {
  return util::env_parse<ScenarioRegime>(kScenarioEnvVar, fallback, parse_regime,
                                         "baseline, routing, multipath, adaptive, pathdiv");
}

RegimeConfig RegimeConfig::from_env(RegimeConfig base) {
  base.regime = regime_from_env(base.regime);
  return base;
}

namespace {

bool is_transit(const topo::AsGraph& graph, topo::AsId as) {
  const topo::AsTier tier = graph.as_info(as).tier;
  return tier == topo::AsTier::kTier1 || tier == topo::AsTier::kTransit;
}

/// Per-policy sub-seed: a function of the seed, the policy's position,
/// and its censor — NOT of any evaluation order.
std::uint64_t policy_seed(std::uint64_t seed, std::size_t index, topo::AsId censor) {
  return util::mix64(seed, util::mix64(static_cast<std::uint64_t>(index),
                                       static_cast<std::uint64_t>(static_cast<std::uint32_t>(censor))));
}

}  // namespace

void attach_ingress_predicates(const topo::AsGraph& graph, std::vector<CensorPolicy>& policies,
                               double ingress_fraction, std::uint64_t seed) {
  if (!(ingress_fraction > 0.0) || ingress_fraction > 1.0) {
    throw std::invalid_argument("attach_ingress_predicates: ingress_fraction outside (0, 1]");
  }
  for (std::size_t i = 0; i < policies.size(); ++i) {
    CensorPolicy& p = policies[i];
    if (!is_transit(graph, p.censor)) continue;
    const auto& neighbors = graph.neighbors(p.censor);
    if (neighbors.size() < 2) continue;  // single ingress: nothing for churn to flip
    std::vector<topo::AsId> candidates;
    candidates.reserve(neighbors.size());
    for (const topo::Neighbor& nb : neighbors) candidates.push_back(nb.as);
    std::sort(candidates.begin(), candidates.end());
    util::Rng rng(policy_seed(seed, i, p.censor) ^ 0x1A62E55ULL);
    rng.shuffle(candidates);
    const auto keep = std::max<std::size_t>(
        1, std::min(candidates.size() - 1,
                    static_cast<std::size_t>(ingress_fraction *
                                             static_cast<double>(candidates.size()) + 0.5)));
    candidates.resize(keep);
    p.ingress_ases = std::move(candidates);  // registry ctor re-sorts
  }
}

void attach_path_dither(const topo::AsGraph& graph, std::vector<CensorPolicy>& policies,
                        double dither_fraction, std::uint64_t seed) {
  if (!(dither_fraction > 0.0) || dither_fraction > 1.0) {
    throw std::invalid_argument("attach_path_dither: dither_fraction outside (0, 1]");
  }
  for (std::size_t i = 0; i < policies.size(); ++i) {
    CensorPolicy& p = policies[i];
    if (!is_transit(graph, p.censor)) continue;
    p.path_fraction = dither_fraction;
    p.path_salt = policy_seed(seed, i, p.censor) ^ 0xD17E4ULL;
  }
}

}  // namespace ct::censor
