// Ground-truth censorship model.
//
// The paper's subject of study: some ASes tamper with traffic that
// transits them.  Each censoring AS carries one or more policies — a set
// of URL categories it filters, the anomaly signatures its interference
// produces (DNS injection, TCP sequence-number anomalies, TTL anomalies,
// RST injection, blockpages), and an active-day range (policies change
// over time, which is what makes coarse-granularity CNFs unsolvable in
// the paper's Figure 1a).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "topo/as_graph.h"
#include "util/rng.h"
#include "util/timewin.h"

namespace ct::censor {

/// The five anomaly types ICLab detects (paper §2.1).
enum class Anomaly : std::uint8_t {
  kDns = 0,
  kSeqno,
  kTtl,
  kRst,
  kBlockpage,
};
inline constexpr std::size_t kNumAnomalies = 5;
inline constexpr std::array<Anomaly, kNumAnomalies> kAllAnomalies{
    Anomaly::kDns, Anomaly::kSeqno, Anomaly::kTtl, Anomaly::kRst, Anomaly::kBlockpage};

std::string to_string(Anomaly a);
/// Short label used in figures: dns/seq/ttl/rst/block.
std::string short_label(Anomaly a);

/// URL content categories (stand-in for the McAfee categorization DB).
enum class UrlCategory : std::uint8_t {
  kShopping = 0,
  kClassifieds,
  kAds,
  kNews,
  kSocial,
  kPolitical,
  kGambling,
  kStreaming,
  /// Circumvention infrastructure (Tor bridges, proxies) — used by the
  /// paper's future-work extension (§5: "identify, at scale, the ASes
  /// responsible for blocking access to Tor bridges").
  kCircumvention,
};
inline constexpr std::size_t kNumCategories = 9;

std::string to_string(UrlCategory c);

/// "Never expires": the default policy end day.  Policies used to
/// default to util::kDaysPerYear, which silently turned every censor
/// off after day 365 — a multi-year monitor replay spent its later
/// years measuring a censor-free world.  Open-ended is the safe
/// default; generators that model a policy *switch* set explicit
/// bounds.
inline constexpr util::Day kPolicyNoExpiry = std::numeric_limits<util::Day>::max();

/// One censorship policy: `censor` filters `categories`, producing
/// `anomalies`, between days [active_from, active_to).
///
/// Two optional *path predicates* narrow where the policy fires (the
/// scenario-regime layer generates them; see censor/regime.h):
///   * `ingress_ases` — routing-induced censorship: the policy fires
///     only when traffic reaches the censor from one of these neighbor
///     ASes (the filtered ingress links).  Path churn that moves a
///     client onto or off a filtered ingress flips censorship on/off
///     for that client even though the censor sits still.
///   * `path_fraction`/`path_salt` — path-diversity inconsistency: the
///     policy fires only on the fraction of full-path-hash space below
///     `path_fraction` (DPI deployed on some internal load-balanced
///     paths but not others).  The same (URL, day) can draw different
///     verdicts on different paths through the same censor.
struct CensorPolicy {
  topo::AsId censor = topo::kInvalidAs;
  std::vector<UrlCategory> categories;
  std::vector<Anomaly> anomalies;
  util::Day active_from = 0;
  util::Day active_to = kPolicyNoExpiry;
  /// Sorted; empty = fires on every ingress.
  std::vector<topo::AsId> ingress_ases;
  /// Fraction of path-hash space the policy covers; 1.0 = every path.
  double path_fraction = 1.0;
  std::uint64_t path_salt = 0;
};

/// Deterministic hash of a full AS path, the input to the
/// `path_fraction` predicate.  Exposed so tests and generators can
/// reason about which side of a policy's threshold a path falls.
std::uint64_t path_fingerprint(std::span<const topo::AsId> path);

/// Queryable registry of ground-truth policies.
class CensorRegistry {
 public:
  CensorRegistry(std::int32_t num_ases, std::vector<CensorPolicy> policies);

  /// Does `as_id` censor `category` with signature `anomaly` on `day`?
  /// AS-level check: path predicates (ingress_ases / path_fraction) are
  /// NOT evaluated here — use the path-based queries for those.
  bool applies(topo::AsId as_id, UrlCategory category, Anomaly anomaly, util::Day day) const;

  /// Does any AS on `path` censor this (category, anomaly) on `day`?
  bool path_censored(std::span<const topo::AsId> path, UrlCategory category, Anomaly anomaly,
                     util::Day day) const;

  /// First AS on `path` whose policy matches, or kInvalidAs.
  topo::AsId first_censor_on_path(std::span<const topo::AsId> path, UrlCategory category,
                                  Anomaly anomaly, util::Day day) const;

  const std::vector<CensorPolicy>& policies() const { return policies_; }

  /// Distinct ASes with at least one policy, ascending.
  std::vector<topo::AsId> censor_ases() const;

  /// Anomaly types AS `as_id` ever produces (union over its policies).
  std::vector<Anomaly> anomalies_of(topo::AsId as_id) const;

  /// Total-function contract shared with applies()/anomalies_of(): any
  /// AS id outside [0, num_ases) — e.g. from a malformed ip2as mapping
  /// — is simply "not a censor", never an exception.
  bool is_censor(topo::AsId as_id) const {
    return as_id >= 0 && static_cast<std::size_t>(as_id) < policy_index_.size() &&
           !policy_index_[static_cast<std::size_t>(as_id)].empty();
  }

 private:
  std::vector<CensorPolicy> policies_;
  /// Per AS: indices into policies_.
  std::vector<std::vector<std::int32_t>> policy_index_;
};

/// The default country-weight list shared by censor placement and
/// vantage placement: the paper's Table 2/3 countries (China, UK,
/// Singapore, Poland, Cyprus, ...) at high weight, plus a broad tail so
/// censors appear in ~30 countries as in the paper.
std::vector<std::pair<std::string, double>> default_censorship_country_weights();

/// Configuration of ground-truth censor generation.
struct CensorConfig {
  /// How many ASes censor.  Placed with a bias toward the weighted
  /// country list below, mirroring the paper's skewed Table 2.
  std::int32_t num_censors = 24;
  /// (country code, weight) pairs; countries absent from the topology
  /// are skipped.  An empty list places censors uniformly.
  /// IMPORTANT: localization works where the platform has nearby
  /// vantage points, so this list should stay aligned with
  /// iclab::PlatformConfig::vantage_country_weights (ICLab deliberately
  /// deploys vantage points where censorship is expected).
  std::vector<std::pair<std::string, double>> country_weights =
      default_censorship_country_weights();
  /// Probability mass for choosing a censor from the weighted list vs.
  /// any country.
  double weighted_country_prob = 0.8;
  /// Fraction of censors placed on transit ASes (the rest on stubs);
  /// transit censors are the ones that can leak.
  double transit_censor_fraction = 0.75;
  /// When non-empty, stub censors are drawn from this pool instead of
  /// all stubs.  The scenario passes the measurement endpoints here:
  /// eyeball and hosting ASes censoring their own traffic are the stub
  /// censors a measurement platform can actually observe.
  std::vector<topo::AsId> stub_censor_pool;
  /// Number of categories per policy: 1 + geometric(extra).
  double extra_category_prob = 0.35;
  /// Number of anomaly signatures per censor: 1 + geometric(extra).
  double extra_anomaly_prob = 0.35;
  /// Probability a censor changes policy mid-year (one switch day).
  double policy_change_prob = 0.15;
};

/// Draws ground-truth censors.  Deterministic given the seed.
CensorRegistry generate_censors(const topo::AsGraph& graph, const CensorConfig& config,
                                std::uint64_t seed);

/// Per-anomaly measurement noise: the probability the detector fires on
/// an uncensored measurement (false positive) and misses a censored one
/// (false negative).  The RST detector is deliberately the noisiest,
/// matching the paper's observation that organic RSTs are hard to tell
/// from injected ones (Figure 1b discussion).
struct DetectorNoise {
  std::array<double, kNumAnomalies> false_positive{1.5e-5, 3e-5, 5e-5, 1.5e-4, 8e-6};
  std::array<double, kNumAnomalies> false_negative{0.003, 0.006, 0.005, 0.02, 0.003};

  double fp(Anomaly a) const { return false_positive[static_cast<std::size_t>(a)]; }
  double fn(Anomaly a) const { return false_negative[static_cast<std::size_t>(a)]; }
};

}  // namespace ct::censor
