#include "censor/policy.h"

#include <algorithm>
#include <stdexcept>

namespace ct::censor {

std::string to_string(Anomaly a) {
  switch (a) {
    case Anomaly::kDns: return "DNS";
    case Anomaly::kSeqno: return "SEQNO";
    case Anomaly::kTtl: return "TTL";
    case Anomaly::kRst: return "RESET";
    case Anomaly::kBlockpage: return "Blockpage";
  }
  return "?";
}

std::string short_label(Anomaly a) {
  switch (a) {
    case Anomaly::kDns: return "dns";
    case Anomaly::kSeqno: return "seq";
    case Anomaly::kTtl: return "ttl";
    case Anomaly::kRst: return "rst";
    case Anomaly::kBlockpage: return "block";
  }
  return "?";
}

std::string to_string(UrlCategory c) {
  switch (c) {
    case UrlCategory::kShopping: return "Online Shopping";
    case UrlCategory::kClassifieds: return "Classifieds";
    case UrlCategory::kAds: return "Advertisements";
    case UrlCategory::kNews: return "News";
    case UrlCategory::kSocial: return "Social Media";
    case UrlCategory::kPolitical: return "Political";
    case UrlCategory::kGambling: return "Gambling";
    case UrlCategory::kStreaming: return "Streaming";
    case UrlCategory::kCircumvention: return "Circumvention";
  }
  return "?";
}

std::vector<std::pair<std::string, double>> default_censorship_country_weights() {
  return {{"CN", 4.0}, {"GB", 3.5}, {"SG", 3.0}, {"PL", 2.5}, {"CY", 2.5}, {"SE", 1.5},
          {"UA", 1.5}, {"AE", 1.5}, {"IE", 1.5}, {"ES", 1.5}, {"JP", 1.5}, {"RU", 1.5},
          {"US", 0.8}, {"DE", 0.8}, {"FR", 0.8}, {"NL", 0.8}, {"KR", 0.8}, {"IN", 0.8},
          {"TR", 0.8}, {"SA", 0.8}, {"BR", 0.8}, {"ZA", 0.8}, {"HK", 0.8}, {"TW", 0.8},
          {"TH", 0.8}, {"MY", 0.8}, {"ID", 0.8}, {"VN", 0.8}, {"IT", 0.8}, {"CZ", 0.8}};
}

std::uint64_t path_fingerprint(std::span<const topo::AsId> path) {
  std::uint64_t fp = 0x9A7Bu;
  for (const topo::AsId as : path) {
    fp = util::mix64(fp, static_cast<std::uint64_t>(static_cast<std::uint32_t>(as)));
  }
  return fp;
}

CensorRegistry::CensorRegistry(std::int32_t num_ases, std::vector<CensorPolicy> policies)
    : policies_(std::move(policies)),
      policy_index_(static_cast<std::size_t>(num_ases)) {
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    auto& p = policies_[i];
    if (p.censor < 0 || p.censor >= num_ases) {
      throw std::invalid_argument("CensorRegistry: policy for unknown AS");
    }
    if (p.categories.empty() || p.anomalies.empty()) {
      throw std::invalid_argument("CensorRegistry: empty policy");
    }
    if (p.active_from >= p.active_to) {
      throw std::invalid_argument("CensorRegistry: empty active window");
    }
    if (!(p.path_fraction > 0.0) || p.path_fraction > 1.0) {
      throw std::invalid_argument("CensorRegistry: path_fraction outside (0, 1]");
    }
    std::sort(p.ingress_ases.begin(), p.ingress_ases.end());
    policy_index_[static_cast<std::size_t>(p.censor)].push_back(static_cast<std::int32_t>(i));
  }
}

bool CensorRegistry::applies(topo::AsId as_id, UrlCategory category, Anomaly anomaly,
                             util::Day day) const {
  if (as_id < 0 || as_id >= static_cast<topo::AsId>(policy_index_.size())) return false;
  for (const auto idx : policy_index_[static_cast<std::size_t>(as_id)]) {
    const auto& p = policies_[static_cast<std::size_t>(idx)];
    if (day < p.active_from || day >= p.active_to) continue;
    if (std::find(p.anomalies.begin(), p.anomalies.end(), anomaly) == p.anomalies.end()) {
      continue;
    }
    if (std::find(p.categories.begin(), p.categories.end(), category) != p.categories.end()) {
      return true;
    }
  }
  return false;
}

bool CensorRegistry::path_censored(std::span<const topo::AsId> path, UrlCategory category,
                                   Anomaly anomaly, util::Day day) const {
  return first_censor_on_path(path, category, anomaly, day) != topo::kInvalidAs;
}

topo::AsId CensorRegistry::first_censor_on_path(std::span<const topo::AsId> path,
                                                UrlCategory category, Anomaly anomaly,
                                                util::Day day) const {
  // Path-hash only computed when some matching policy actually carries a
  // path_fraction predicate (the common case has none).
  std::uint64_t fp = 0;
  bool fp_ready = false;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const topo::AsId as = path[i];
    if (as < 0 || as >= static_cast<topo::AsId>(policy_index_.size())) continue;
    const topo::AsId ingress = i > 0 ? path[i - 1] : topo::kInvalidAs;
    for (const auto idx : policy_index_[static_cast<std::size_t>(as)]) {
      const auto& p = policies_[static_cast<std::size_t>(idx)];
      if (day < p.active_from || day >= p.active_to) continue;
      if (std::find(p.anomalies.begin(), p.anomalies.end(), anomaly) == p.anomalies.end()) {
        continue;
      }
      if (std::find(p.categories.begin(), p.categories.end(), category) == p.categories.end()) {
        continue;
      }
      // Routing-induced predicate: the traffic must enter the censor via
      // one of the filtered ingress neighbors.  A path that *originates*
      // at the censor has no ingress link, so ingress policies skip it.
      if (!p.ingress_ases.empty() &&
          (ingress == topo::kInvalidAs ||
           !std::binary_search(p.ingress_ases.begin(), p.ingress_ases.end(), ingress))) {
        continue;
      }
      // Path-diversity predicate: fires on the `path_fraction` slice of
      // path-hash space.  Deterministic per (policy, exact path).
      if (p.path_fraction < 1.0) {
        if (!fp_ready) {
          fp = path_fingerprint(path);
          fp_ready = true;
        }
        const double u =
            static_cast<double>(util::mix64(p.path_salt, fp) >> 11) * 0x1.0p-53;
        if (u >= p.path_fraction) continue;
      }
      return as;
    }
  }
  return topo::kInvalidAs;
}

std::vector<topo::AsId> CensorRegistry::censor_ases() const {
  std::vector<topo::AsId> out;
  for (std::size_t as = 0; as < policy_index_.size(); ++as) {
    if (!policy_index_[as].empty()) out.push_back(static_cast<topo::AsId>(as));
  }
  return out;
}

std::vector<Anomaly> CensorRegistry::anomalies_of(topo::AsId as_id) const {
  std::vector<Anomaly> out;
  if (as_id < 0 || as_id >= static_cast<topo::AsId>(policy_index_.size())) return out;
  for (const auto idx : policy_index_[static_cast<std::size_t>(as_id)]) {
    for (const Anomaly a : policies_[static_cast<std::size_t>(idx)].anomalies) {
      if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
    }
  }
  std::sort(out.begin(), out.end(),
            [](Anomaly a, Anomaly b) { return static_cast<int>(a) < static_cast<int>(b); });
  return out;
}

namespace {

std::vector<UrlCategory> draw_categories(util::Rng& rng, double extra_prob) {
  std::vector<UrlCategory> all;
  for (std::size_t c = 0; c < kNumCategories; ++c) all.push_back(static_cast<UrlCategory>(c));
  rng.shuffle(all);
  const auto count = std::min<std::size_t>(
      1 + static_cast<std::size_t>(rng.geometric(1.0 - extra_prob)), all.size());
  all.resize(count);
  return all;
}

std::vector<Anomaly> draw_anomalies(util::Rng& rng, double extra_prob) {
  std::vector<Anomaly> all(kAllAnomalies.begin(), kAllAnomalies.end());
  rng.shuffle(all);
  const auto count = std::min<std::size_t>(
      1 + static_cast<std::size_t>(rng.geometric(1.0 - extra_prob)), all.size());
  all.resize(count);
  return all;
}

}  // namespace

CensorRegistry generate_censors(const topo::AsGraph& graph, const CensorConfig& config,
                                std::uint64_t seed) {
  if (config.num_censors < 0) throw std::invalid_argument("CensorConfig: num_censors < 0");
  util::Rng rng(util::mix64(seed, 0x5EC5E7));

  // Resolve the weighted country list against the topology.
  std::vector<std::pair<topo::CountryId, double>> weighted;
  for (const auto& [code, weight] : config.country_weights) {
    for (const auto& c : graph.countries()) {
      if (c.code == code) {
        weighted.emplace_back(c.id, weight);
        break;
      }
    }
  }
  double total_weight = 0.0;
  for (const auto& [id, w] : weighted) total_weight += w;

  auto pick_weighted_country = [&]() -> topo::CountryId {
    double u = rng.uniform() * total_weight;
    for (const auto& [id, w] : weighted) {
      u -= w;
      if (u <= 0.0) return id;
    }
    return weighted.back().first;
  };

  const auto transits = graph.ases_with_tier(topo::AsTier::kTransit);
  const auto stubs = config.stub_censor_pool.empty() ? graph.ases_with_tier(topo::AsTier::kStub)
                                                     : config.stub_censor_pool;

  std::vector<bool> taken(static_cast<std::size_t>(graph.num_ases()), false);
  std::vector<CensorPolicy> policies;
  std::int32_t placed = 0;
  std::int32_t attempts = 0;
  const std::int32_t max_attempts = config.num_censors * 200 + 1000;
  while (placed < config.num_censors && attempts < max_attempts) {
    ++attempts;
    const bool want_transit = rng.bernoulli(config.transit_censor_fraction);
    const auto& pool = want_transit && !transits.empty() ? transits
                       : !stubs.empty()                  ? stubs
                                                         : transits;
    if (pool.empty()) break;

    topo::AsId candidate = topo::kInvalidAs;
    if (!weighted.empty() && rng.bernoulli(config.weighted_country_prob)) {
      const topo::CountryId cc = pick_weighted_country();
      std::vector<topo::AsId> domestic;
      for (const topo::AsId as : pool) {
        if (graph.as_info(as).country == cc && !taken[static_cast<std::size_t>(as)]) {
          domestic.push_back(as);
        }
      }
      if (!domestic.empty()) candidate = rng.pick(domestic);
    }
    if (candidate == topo::kInvalidAs) {
      const topo::AsId as = rng.pick(pool);
      if (!taken[static_cast<std::size_t>(as)]) candidate = as;
    }
    if (candidate == topo::kInvalidAs) continue;
    taken[static_cast<std::size_t>(candidate)] = true;
    ++placed;

    CensorPolicy base;
    base.censor = candidate;
    base.categories = draw_categories(rng, config.extra_category_prob);
    base.anomalies = draw_anomalies(rng, config.extra_anomaly_prob);

    if (rng.bernoulli(config.policy_change_prob)) {
      // Policy switch: the original policy runs until a random day, then
      // a (possibly different) one takes over.
      const auto switch_day =
          static_cast<util::Day>(rng.uniform_int(30, util::kDaysPerYear - 30));
      CensorPolicy before = base;
      before.active_to = switch_day;
      CensorPolicy after;
      after.censor = candidate;
      after.categories = draw_categories(rng, config.extra_category_prob);
      after.anomalies = draw_anomalies(rng, config.extra_anomaly_prob);
      after.active_from = switch_day;
      policies.push_back(std::move(before));
      policies.push_back(std::move(after));
    } else {
      policies.push_back(std::move(base));
    }
  }

  return CensorRegistry(graph.num_ases(), std::move(policies));
}

}  // namespace ct::censor
