// Scenario regimes: stress-tests of the paper's two load-bearing
// assumptions — censors sit still while paths churn, and each
// (vantage, URL, epoch) sees exactly one path.
//
// Related work shows both break in the wild, and each breakage is a
// regime here:
//   * kRoutingInduced — censorship policies bound to ingress links, so
//     path churn itself flips censorship on/off for a client even
//     though the censor never moves (Bhaskar & Pearce, "Understanding
//     Routing-Induced Censorship Changes Globally").
//   * kMultipath — ECMP/load-balanced forwarding: the platform hashes
//     flows across equal-cost alternates, breaking the
//     one-path-per-epoch premise (Barnes et al., "Node Failure
//     Localisation for Load Balancing Dynamic Networks").
//   * kAdaptive — strategic on-path placement that re-optimizes for
//     transit coverage at policy-change days (Decoy-Router-style
//     targeting).
//   * kPathDiversity — same URL, different verdicts by path: DPI on
//     some load-balanced internal paths but not others (Pathfinder).
//
// This header is graph-only (censor layer cannot link bgp); the
// route-aware adaptive generator lives in analysis/regime.h.  The
// regime is selected per-run via ScenarioConfig::regime or the
// CT_SCENARIO env knob.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "censor/policy.h"
#include "topo/as_graph.h"
#include "util/timewin.h"

namespace ct::censor {

/// Which stress regime the scenario runs under.
enum class ScenarioRegime : std::uint8_t {
  kBaseline = 0,
  kRoutingInduced,
  kMultipath,
  kAdaptive,
  kPathDiversity,
};

inline constexpr std::size_t kNumRegimes = 5;

/// CT_SCENARIO value / golden-file suffix: baseline, routing,
/// multipath, adaptive, pathdiv.
std::string to_string(ScenarioRegime regime);
std::optional<ScenarioRegime> parse_regime(std::string_view value);

/// All regimes in enum order (baseline first) — iteration order for the
/// accuracy report and the equivalence suites.
std::vector<ScenarioRegime> all_regimes();

/// The env knob.  Unset -> `fallback`; a typo'd value throws
/// util::EnvParseError listing the accepted names.
inline constexpr const char* kScenarioEnvVar = "CT_SCENARIO";
ScenarioRegime regime_from_env(ScenarioRegime fallback = ScenarioRegime::kBaseline);

/// Regime selection plus the knobs its generators read.  Part of
/// ScenarioConfig, so it is covered by the checkpoint config
/// fingerprint: a checkpoint written under one regime refuses to
/// resume under another.
struct RegimeConfig {
  ScenarioRegime regime = ScenarioRegime::kBaseline;
  /// kRoutingInduced: fraction of a transit censor's neighbor links its
  /// policy filters (the rest of its ingresses pass traffic clean).
  double ingress_fraction = 0.5;
  /// kPathDiversity: fraction of path-hash space a transit policy
  /// covers — the "DPI on some internal paths" share.
  double dither_fraction = 0.5;
  /// kAdaptive: days between placement re-optimizations (the strategic
  /// censor's policy-change cadence).
  util::Day adaptive_period_days = 91;

  /// `base` with the regime replaced by the CT_SCENARIO value (knobs
  /// keep their configured values).
  static RegimeConfig from_env(RegimeConfig base);
  static RegimeConfig from_env() { return from_env(RegimeConfig{}); }
};

/// kRoutingInduced generator: attaches ingress predicates to every
/// transit-censor policy — a seeded ~ingress_fraction subset of the
/// censor's neighbors becomes its filtered ingress set.  Stub-censor
/// policies are left alone (a stub censors its own origin/terminus
/// traffic; there is no upstream ingress choice to churn through).
/// Deterministic in (seed, policy order).
void attach_ingress_predicates(const topo::AsGraph& graph, std::vector<CensorPolicy>& policies,
                               double ingress_fraction, std::uint64_t seed);

/// kPathDiversity generator: gives every transit-censor policy a
/// per-policy path salt and `dither_fraction` coverage of path-hash
/// space, so the same (URL, day) draws different verdicts on different
/// paths through the same censor.  Deterministic in (seed, policy
/// order).
void attach_path_dither(const topo::AsGraph& graph, std::vector<CensorPolicy>& policies,
                        double dither_fraction, std::uint64_t seed);

}  // namespace ct::censor
