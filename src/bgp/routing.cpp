#include "bgp/routing.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.h"

namespace ct::bgp {

using topo::AsId;
using topo::NeighborKind;

RouteTable::RouteTable(AsId dest, std::int32_t num_ases)
    : dest_(dest),
      kind_(static_cast<std::size_t>(num_ases), RouteKind::kNone),
      cust_dist_(static_cast<std::size_t>(num_ases), kInf),
      peer_dist_(static_cast<std::size_t>(num_ases), kInf),
      prov_dist_(static_cast<std::size_t>(num_ases), kInf),
      cust_next_(static_cast<std::size_t>(num_ases), topo::kInvalidAs),
      peer_next_(static_cast<std::size_t>(num_ases), topo::kInvalidAs),
      prov_next_(static_cast<std::size_t>(num_ases), topo::kInvalidAs) {}

std::int32_t RouteTable::path_length(AsId src) const {
  const auto s = static_cast<std::size_t>(src);
  switch (kind_[s]) {
    case RouteKind::kOrigin: return 0;
    case RouteKind::kCustomer: return cust_dist_[s];
    case RouteKind::kPeer: return peer_dist_[s];
    case RouteKind::kProvider: return prov_dist_[s];
    case RouteKind::kNone: return kInf;
  }
  return kInf;
}

std::vector<AsId> RouteTable::path(AsId src) const {
  std::vector<AsId> out;
  if (!reachable(src)) return out;
  AsId x = src;
  RouteKind cls = kind_[static_cast<std::size_t>(src)];
  const auto limit = kind_.size() + 2;
  while (out.size() <= limit) {
    out.push_back(x);
    if (x == dest_) return out;
    const auto xs = static_cast<std::size_t>(x);
    switch (cls) {
      case RouteKind::kCustomer:
        // The customer exported its own customer route to us.
        x = cust_next_[xs];
        cls = x == dest_ ? RouteKind::kOrigin : RouteKind::kCustomer;
        break;
      case RouteKind::kPeer:
        // The peer exported its customer route.
        x = peer_next_[xs];
        cls = x == dest_ ? RouteKind::kOrigin : RouteKind::kCustomer;
        break;
      case RouteKind::kProvider: {
        // The provider exported its best (selected) route.
        x = prov_next_[xs];
        const auto ps = static_cast<std::size_t>(x);
        if (x == dest_) {
          cls = RouteKind::kOrigin;
        } else if (cust_dist_[ps] < kInf) {
          cls = RouteKind::kCustomer;
        } else if (peer_dist_[ps] < kInf) {
          cls = RouteKind::kPeer;
        } else {
          cls = RouteKind::kProvider;
        }
        break;
      }
      case RouteKind::kOrigin:
      case RouteKind::kNone:
        throw std::logic_error("RouteTable::path: inconsistent route state");
    }
  }
  throw std::logic_error("RouteTable::path: path reconstruction did not terminate");
}

std::int32_t RouteTable::advertised(std::size_t x) const {
  if (cust_dist_[x] < kInf) return cust_dist_[x];
  if (peer_dist_[x] < kInf) return peer_dist_[x];
  return prov_dist_[x];
}

std::vector<AsId> RouteTable::class_next_hops(AsId x, RouteKind cls, const topo::AsGraph& graph,
                                              const std::vector<bool>& link_up) const {
  std::vector<AsId> out;
  const auto xs = static_cast<std::size_t>(x);
  for (const auto& nb : graph.neighbors(x)) {
    if (!link_up[static_cast<std::size_t>(nb.link)]) continue;
    const auto y = static_cast<std::size_t>(nb.as);
    switch (cls) {
      case RouteKind::kCustomer:
        // Mirror of phase 1: the route came up a provider edge, so from
        // x's side the next hop is a customer one level closer.
        if (nb.kind == NeighborKind::kCustomer && cust_dist_[y] < kInf &&
            cust_dist_[y] + 1 == cust_dist_[xs]) {
          out.push_back(nb.as);
        }
        break;
      case RouteKind::kPeer:
        // One peer hop onto an equally short customer route.
        if (nb.kind == NeighborKind::kPeer && cust_dist_[y] < kInf &&
            cust_dist_[y] + 1 == peer_dist_[xs]) {
          out.push_back(nb.as);
        }
        break;
      case RouteKind::kProvider:
        // The provider exported its selected route.
        if (nb.kind == NeighborKind::kProvider && advertised(y) < kInf &&
            advertised(y) + 1 == prov_dist_[xs]) {
          out.push_back(nb.as);
        }
        break;
      case RouteKind::kOrigin:
      case RouteKind::kNone:
        return out;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AsId> RouteTable::ecmp_next_hops(AsId src, const topo::AsGraph& graph,
                                             const std::vector<bool>& link_up) const {
  if (src < 0 || src >= static_cast<AsId>(kind_.size())) return {};
  return class_next_hops(src, kind_[static_cast<std::size_t>(src)], graph, link_up);
}

std::vector<AsId> RouteTable::ecmp_path(AsId src, std::uint64_t flow_hash,
                                        const topo::AsGraph& graph,
                                        const std::vector<bool>& link_up) const {
  std::vector<AsId> out;
  if (!reachable(src)) return out;
  AsId x = src;
  RouteKind cls = kind_[static_cast<std::size_t>(src)];
  const auto limit = kind_.size() + 2;
  while (out.size() <= limit) {
    out.push_back(x);
    if (x == dest_) return out;
    const std::vector<AsId> hops = class_next_hops(x, cls, graph, link_up);
    if (hops.empty()) {
      throw std::logic_error("RouteTable::ecmp_path: inconsistent route state");
    }
    // Per-hop ECMP hash: keyed on the flow and the hop index, so one
    // flow makes independent (but fixed) choices along its path.
    const std::size_t pick =
        hops.size() == 1
            ? 0
            : static_cast<std::size_t>(util::mix64(flow_hash, out.size()) % hops.size());
    x = hops[pick];
    const auto ps = static_cast<std::size_t>(x);
    if (x == dest_) {
      cls = RouteKind::kOrigin;
    } else if (cls == RouteKind::kCustomer || cls == RouteKind::kPeer) {
      cls = RouteKind::kCustomer;
    } else if (cust_dist_[ps] < kInf) {
      cls = RouteKind::kCustomer;
    } else if (peer_dist_[ps] < kInf) {
      cls = RouteKind::kPeer;
    } else {
      cls = RouteKind::kProvider;
    }
  }
  throw std::logic_error("RouteTable::ecmp_path: path reconstruction did not terminate");
}

RouteComputer::RouteComputer(const topo::AsGraph& graph) : graph_(graph) {}

RouteTable RouteComputer::compute(topo::AsId dest) const {
  const std::vector<bool> all_up(static_cast<std::size_t>(graph_.num_links()), true);
  return compute(dest, all_up);
}

RouteTable RouteComputer::compute(topo::AsId dest, const std::vector<bool>& link_up) const {
  if (dest < 0 || dest >= graph_.num_ases()) {
    throw std::invalid_argument("RouteComputer::compute: unknown destination");
  }
  if (link_up.size() != static_cast<std::size_t>(graph_.num_links())) {
    throw std::invalid_argument("RouteComputer::compute: link_up size mismatch");
  }
  const auto n = static_cast<std::size_t>(graph_.num_ases());
  RouteTable table(dest, graph_.num_ases());

  // --- Phase 1: customer routes, BFS up provider edges from dest. ---
  table.cust_dist_[static_cast<std::size_t>(dest)] = 0;
  std::vector<AsId> frontier{dest};
  std::int32_t level = 0;
  while (!frontier.empty()) {
    std::vector<AsId> next_frontier;
    std::sort(frontier.begin(), frontier.end());
    for (const AsId x : frontier) {
      for (const auto& nb : graph_.neighbors(x)) {
        if (nb.kind != NeighborKind::kProvider) continue;  // propagate up only
        if (!link_up[static_cast<std::size_t>(nb.link)]) continue;
        const auto p = static_cast<std::size_t>(nb.as);
        if (table.cust_dist_[p] > level + 1) {
          table.cust_dist_[p] = level + 1;
          table.cust_next_[p] = x;
          next_frontier.push_back(nb.as);
        } else if (table.cust_dist_[p] == level + 1 && x < table.cust_next_[p]) {
          table.cust_next_[p] = x;  // deterministic tie-break: lowest next hop
        }
      }
    }
    frontier = std::move(next_frontier);
    ++level;
  }

  // --- Phase 2: peer routes (one peer hop onto a customer route). ---
  for (std::size_t x = 0; x < n; ++x) {
    if (static_cast<AsId>(x) == dest) continue;
    for (const auto& nb : graph_.neighbors(static_cast<AsId>(x))) {
      if (nb.kind != NeighborKind::kPeer) continue;
      if (!link_up[static_cast<std::size_t>(nb.link)]) continue;
      const auto y = static_cast<std::size_t>(nb.as);
      if (table.cust_dist_[y] >= RouteTable::kInf) continue;
      const std::int32_t cand = table.cust_dist_[y] + 1;
      if (cand < table.peer_dist_[x] ||
          (cand == table.peer_dist_[x] && nb.as < table.peer_next_[x])) {
        table.peer_dist_[x] = cand;
        table.peer_next_[x] = nb.as;
      }
    }
  }

  // --- Phase 3: provider routes, Dijkstra down customer edges. ---
  // advertised(x): length of the route x exports to its customers = the
  // length of x's *selected* route (customer > peer > provider).
  auto advertised = [&table](std::size_t x) { return table.advertised(x); };

  using Entry = std::pair<std::int32_t, AsId>;  // (advertised length, AS)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (std::size_t x = 0; x < n; ++x) {
    const std::int32_t adv = advertised(x);
    if (adv < RouteTable::kInf) pq.emplace(adv, static_cast<AsId>(x));
  }
  while (!pq.empty()) {
    const auto [d, x] = pq.top();
    pq.pop();
    if (d != advertised(static_cast<std::size_t>(x))) continue;  // stale entry
    for (const auto& nb : graph_.neighbors(x)) {
      if (nb.kind != NeighborKind::kCustomer) continue;  // export down only
      if (!link_up[static_cast<std::size_t>(nb.link)]) continue;
      const auto c = static_cast<std::size_t>(nb.as);
      if (static_cast<AsId>(c) == dest) continue;
      const std::int32_t cand = d + 1;
      if (cand < table.prov_dist_[c] ||
          (cand == table.prov_dist_[c] && x < table.prov_next_[c])) {
        const std::int32_t before = advertised(c);
        table.prov_dist_[c] = cand;
        table.prov_next_[c] = x;
        // Only re-advertise if c's own selection (and thus export) improved.
        if (advertised(c) < before) pq.emplace(advertised(c), static_cast<AsId>(c));
      }
    }
  }

  // --- Final selection. ---
  for (std::size_t x = 0; x < n; ++x) {
    if (static_cast<AsId>(x) == dest) {
      table.kind_[x] = RouteKind::kOrigin;
    } else if (table.cust_dist_[x] < RouteTable::kInf) {
      table.kind_[x] = RouteKind::kCustomer;
    } else if (table.peer_dist_[x] < RouteTable::kInf) {
      table.kind_[x] = RouteKind::kPeer;
    } else if (table.prov_dist_[x] < RouteTable::kInf) {
      table.kind_[x] = RouteKind::kProvider;
    } else {
      table.kind_[x] = RouteKind::kNone;
    }
  }
  return table;
}

RouteTableSet::RouteTableSet(const RouteComputer& computer,
                             const std::vector<topo::AsId>& dests,
                             const std::vector<bool>& link_up) {
  tables_.reserve(dests.size());
  for (const topo::AsId dest : dests) {
    tables_.push_back(computer.compute(dest, link_up));
  }
}

}  // namespace ct::bgp
