#include "bgp/route_cache.h"

#include <utility>

namespace ct::bgp {

void EpochRouteCache::expect(std::int64_t epoch, std::int32_t uses) {
  std::lock_guard<std::mutex> lock(mutex_);
  expected_[epoch] += uses;
}

std::shared_ptr<const RouteTableSet> EpochRouteCache::get(std::int64_t epoch,
                                                          const Compute& compute) {
  std::promise<std::shared_ptr<const RouteTableSet>> promise;
  std::shared_future<std::shared_ptr<const RouteTableSet>> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    auto it = entries_.find(epoch);
    if (it == entries_.end()) {
      Entry entry;
      entry.tables = promise.get_future().share();
      // Consume the plan: a get() after the planned users drained (or
      // with no plan at all) must compute and drop immediately, not
      // re-pin the entry for users that will never come.
      const auto expected = expected_.find(epoch);
      entry.remaining = expected == expected_.end() ? 1 : expected->second;
      if (expected != expected_.end()) expected_.erase(expected);
      it = entries_.emplace(epoch, std::move(entry)).first;
      owner = true;
    } else {
      ++hits_;
    }
    future = it->second.tables;
    // The map entry only tracks planned users; the shared_future (and
    // the shared_ptr it yields) keep the tables alive for the takers.
    if (--it->second.remaining <= 0) entries_.erase(it);
  }
  if (owner) {
    // Compute outside the lock: only same-epoch callers wait.
    try {
      promise.set_value(std::make_shared<const RouteTableSet>(compute()));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::uint64_t EpochRouteCache::lookups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookups_;
}

std::uint64_t EpochRouteCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t EpochRouteCache::live_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace ct::bgp
