// Gao-Rexford BGP route computation.
//
// For a destination AS d, every other AS selects its best route under
// the standard economic policy model:
//   * route preference: customer-learned > peer-learned > provider-learned
//   * within a class: shortest AS-path length
//   * final tie-break: lowest next-hop AS id (deterministic)
// Export rules: customer routes are exported to everyone; peer- and
// provider-learned routes are exported only to customers.  All resulting
// paths are valley-free and loop-free.
//
// Computation is per-destination over the subset of links that are
// currently up (the churn engine owns link state), in three phases:
// customer routes via BFS up provider edges, peer routes in one step,
// provider routes via a Dijkstra sweep down customer edges.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/as_graph.h"

namespace ct::bgp {

/// How an AS learned its best route toward the destination.
enum class RouteKind : std::uint8_t {
  kNone = 0,   // unreachable
  kOrigin,     // this AS is the destination
  kCustomer,   // learned from a customer
  kPeer,       // learned from a peer
  kProvider,   // learned from a provider
};

/// Routing state toward a single destination AS.
class RouteTable {
 public:
  RouteTable(topo::AsId dest, std::int32_t num_ases);

  topo::AsId dest() const { return dest_; }
  RouteKind kind(topo::AsId src) const { return kind_[static_cast<std::size_t>(src)]; }
  bool reachable(topo::AsId src) const { return kind(src) != RouteKind::kNone; }
  /// AS-path length (number of AS hops, 0 for the destination itself).
  std::int32_t path_length(topo::AsId src) const;

  /// Full AS path src..dest (inclusive).  Empty if unreachable.
  std::vector<topo::AsId> path(topo::AsId src) const;

  /// Equal-cost alternates: every neighbor of `src` that offers a route
  /// of the same (class, length) as src's selected route, ascending by
  /// AS id.  path() always follows the lowest-id one; the others are
  /// the ECMP set a load-balancing forwarder may spread flows across.
  /// Recomputed on demand from the stored per-class distances, so the
  /// table's storage (and its sharing through EpochRouteCache) is
  /// unchanged.  `graph`/`link_up` must be the ones this table was
  /// computed from.  Empty for the destination itself or unreachable
  /// sources.
  std::vector<topo::AsId> ecmp_next_hops(topo::AsId src, const topo::AsGraph& graph,
                                         const std::vector<bool>& link_up) const;

  /// Flow-hashed equal-cost path: at every hop, `flow_hash` picks one
  /// of that hop's equal-cost alternates (ECMP forwarding).  The result
  /// has the same class and length as path() — only the concrete AS
  /// sequence may differ — and is a pure function of (table, flow_hash),
  /// so it is deterministic across shard layouts.  Empty if unreachable.
  std::vector<topo::AsId> ecmp_path(topo::AsId src, std::uint64_t flow_hash,
                                    const topo::AsGraph& graph,
                                    const std::vector<bool>& link_up) const;

 private:
  friend class RouteComputer;

  static constexpr std::int32_t kInf = 1 << 28;

  /// Length of the route `x` exports to customers (its selected route).
  std::int32_t advertised(std::size_t x) const;
  /// Equal-cost next hops out of `x` when forwarding in class `cls`.
  std::vector<topo::AsId> class_next_hops(topo::AsId x, RouteKind cls,
                                          const topo::AsGraph& graph,
                                          const std::vector<bool>& link_up) const;

  topo::AsId dest_;
  std::vector<RouteKind> kind_;
  // Per-class route state; kInf distance when the class has no route.
  std::vector<std::int32_t> cust_dist_, peer_dist_, prov_dist_;
  std::vector<topo::AsId> cust_next_, peer_next_, prov_next_;
};

class RouteComputer {
 public:
  explicit RouteComputer(const topo::AsGraph& graph);

  /// Routes toward `dest` considering only links with link_up[link.id].
  /// link_up must cover all links; pass all-true for the failure-free
  /// topology.
  RouteTable compute(topo::AsId dest, const std::vector<bool>& link_up) const;

  /// Convenience: routes over the full topology.
  RouteTable compute(topo::AsId dest) const;

 private:
  const topo::AsGraph& graph_;
};

/// Route tables toward a fixed destination list under one link state:
/// the routing view of a single epoch.  Platform shards build one per
/// epoch they simulate (and one extra to prime route-flutter history),
/// so each shard owns an independent, read-only view instead of sharing
/// mutable routing state.
class RouteTableSet {
 public:
  RouteTableSet(const RouteComputer& computer, const std::vector<topo::AsId>& dests,
                const std::vector<bool>& link_up);

  std::size_t size() const { return tables_.size(); }
  /// Table toward dests[dest_index].
  const RouteTable& at(std::size_t dest_index) const {
    return tables_.at(dest_index);
  }

 private:
  std::vector<RouteTable> tables_;
};

}  // namespace ct::bgp
