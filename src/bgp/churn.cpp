#include "bgp/churn.h"

#include <stdexcept>

namespace ct::bgp {

ChurnEngine::ChurnEngine(const topo::AsGraph& graph, const ChurnConfig& config,
                         std::uint64_t seed)
    : graph_(graph),
      config_(config),
      rng_(util::mix64(seed, 0xC0FFEE)),
      up_(static_cast<std::size_t>(graph.num_links()), true) {}

std::int64_t ChurnEngine::advance() {
  for (const auto& link : graph_.links()) {
    const auto i = static_cast<std::size_t>(link.id);
    if (up_[i]) {
      const double p =
          link.is_volatile ? config_.volatile_fail_prob : config_.stable_fail_prob;
      if (rng_.bernoulli(p)) {
        up_[i] = false;
        ++links_down_;
        ++total_failures_;
      }
    } else if (rng_.bernoulli(config_.repair_prob)) {
      up_[i] = true;
      --links_down_;
      ++total_repairs_;
    }
  }
  return ++epoch_;
}

void ChurnEngine::advance_to(std::int64_t target_epoch) {
  if (target_epoch < epoch_) {
    throw std::invalid_argument("ChurnEngine::advance_to: cannot rewind");
  }
  while (epoch_ < target_epoch) advance();
}

}  // namespace ct::bgp
