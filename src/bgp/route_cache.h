// Shared per-epoch route-table cache for sharded platform runs.
//
// The churn trajectory is a deterministic function of the scenario
// seed, so every shard simulating a given epoch sees the same link
// state and would compute an identical bgp::RouteTableSet.  Shards that
// split the *vantage* dimension cover the same (day, epoch) columns and
// used to recompute that set once per column; shards that split the
// *day* dimension recompute their predecessor's last epoch to prime the
// route-flutter history.  EpochRouteCache shares one immutable
// RouteTableSet per epoch across all of them.
//
// Concurrency and memory: get() is thread-safe; the first caller for an
// epoch computes (others asking for the same epoch wait on its future,
// callers for other epochs proceed).  Entries are reference-planned —
// expect() declares how many get() calls will ask for an epoch, and the
// entry is dropped the moment the last planned user has taken its
// shared_ptr, so the cache holds only the epochs whose sharers have not
// all arrived yet (bounded by shard skew, not by the year length).  An
// unplanned get() computes and drops immediately: never wrong, just a
// miss.  Sharing cached tables cannot change any output — every shard
// would have computed byte-identical tables itself (the shard
// equivalence suite runs with the cache on).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "bgp/routing.h"

namespace ct::bgp {

class EpochRouteCache {
 public:
  using Compute = std::function<RouteTableSet()>;

  /// Declares that `uses` additional get() calls will ask for `epoch`.
  /// Call before the run starts (e.g. once per shard covering the
  /// epoch, plus one per shard priming from it).
  void expect(std::int64_t epoch, std::int32_t uses);

  /// The routing view of `epoch`: computed via `compute` by the first
  /// caller, shared with every other planned caller, and evicted once
  /// all planned callers have taken it.
  std::shared_ptr<const RouteTableSet> get(std::int64_t epoch, const Compute& compute);

  std::uint64_t lookups() const;
  /// get() calls served from an already-computed (or in-flight) entry.
  std::uint64_t hits() const;
  /// Entries still waiting for planned users (0 after a complete run).
  std::size_t live_entries() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const RouteTableSet>> tables;
    std::int32_t remaining = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::int64_t, std::int32_t> expected_;
  std::map<std::int64_t, Entry> entries_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace ct::bgp
