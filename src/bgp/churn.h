// Network-level path churn: the link failure/repair process.
//
// The paper's key enabler is that BGP paths between a fixed (vantage,
// destination) pair change over time, exposing different AS sets to the
// same measurement.  We model the root cause directly: links go down and
// come back, and route recomputation does the rest.  Links come in two
// stability classes (assigned by the topology generator); the mix of a
// mostly-quiet stable class and a lively volatile class reproduces the
// shape of the paper's Figure 3 (fast initial churn, slow saturation,
// and a tail of pairs whose paths never change).
//
// The process advances in *epochs* (sub-day steps); the measurement
// platform runs several epochs per day so that intraday path changes —
// which the paper observes for ~25% of pairs — exist in the simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/as_graph.h"
#include "util/rng.h"

namespace ct::bgp {

struct ChurnConfig {
  /// Per-epoch failure probability of an up link, by stability class.
  /// Volatile links flap near-daily (matching the paper's observation
  /// that the pairs that change within a day are largely the same pairs
  /// that change within a week); stable links fail rarely, supplying the
  /// slow year-scale growth of Figure 3.
  double volatile_fail_prob = 0.25;
  double stable_fail_prob = 0.00016;
  /// Per-epoch repair probability of a down link.
  double repair_prob = 0.6;
};

class ChurnEngine {
 public:
  ChurnEngine(const topo::AsGraph& graph, const ChurnConfig& config, std::uint64_t seed);

  /// Advances the process by one epoch and returns the epoch index now
  /// in effect.  Epoch 0 (pristine, all links up) is the state before
  /// the first call.
  std::int64_t advance();

  /// Replays the process forward until epoch() == target_epoch.  The
  /// link-state trajectory is a deterministic function of the seed, so a
  /// freshly constructed engine advanced to epoch e is bit-identical to
  /// one that arrived there one advance() at a time — this is how a
  /// platform shard starting mid-year reconstructs the churn state of
  /// its first epoch.  Throws std::invalid_argument when target_epoch is
  /// behind the current epoch (the process cannot rewind).
  void advance_to(std::int64_t target_epoch);

  std::int64_t epoch() const { return epoch_; }
  const std::vector<bool>& link_up() const { return up_; }
  std::int32_t links_down() const { return links_down_; }

  /// Total up->down transitions so far (a churn intensity metric).
  std::int64_t total_failures() const { return total_failures_; }

  /// Total down->up transitions.  Together with total_failures() this
  /// distinguishes a flapping link population (failures ~ repairs, few
  /// links down) from a dying one (failures >> repairs); the invariant
  /// total_failures() - total_repairs() == links_down() always holds.
  std::int64_t total_repairs() const { return total_repairs_; }

 private:
  const topo::AsGraph& graph_;
  ChurnConfig config_;
  util::Rng rng_;
  std::vector<bool> up_;
  std::int64_t epoch_ = 0;
  std::int32_t links_down_ = 0;
  std::int64_t total_failures_ = 0;
  std::int64_t total_repairs_ = 0;
};

}  // namespace ct::bgp
