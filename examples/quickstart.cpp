// Quickstart: run the whole censorship-localization pipeline on a small
// synthetic Internet and print the paper-style report.
//
//   $ [CT_SCENARIO={baseline,routing,multipath,adaptive,pathdiv}] ./quickstart [seed]
//
// Builds a topology, plants ground-truth censors, simulates two months
// of ICLab-style measurements, localizes censors with boolean network
// tomography, and prints every table/figure of the evaluation.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/report.h"
#include "censor/regime.h"

int main(int argc, char** argv) {
  ct::analysis::ScenarioConfig config = ct::analysis::small_scenario();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  config.regime = ct::censor::RegimeConfig::from_env(config.regime);

  std::cout << "churntomo quickstart: seed " << config.seed << ", scenario "
            << ct::censor::to_string(config.regime.regime) << ", "
            << config.topology.num_ases << " ASes, " << config.platform.num_vantages
            << " vantage points, " << config.platform.num_days << " days\n\n";

  ct::analysis::Scenario scenario(config);
  const ct::analysis::ExperimentResult result = ct::analysis::run_experiment(scenario);
  std::cout << ct::analysis::render_all(result, scenario);
  return 0;
}
