// Diagnose residual ambiguity: inspect multi-solution day-granularity
// CNFs and classify which ASes stay unpinned — true censors, vantage
// ASes, destinations, or transit ASes that never appeared on a clean
// path.  Useful for understanding when the method cannot pin a censor
// (the cases the paper reports as "2+ solutions").
//
//   $ ./diagnose_ambiguity
#include <iostream>
#include <map>
#include <set>

#include "analysis/experiment.h"
#include "analysis/scenario.h"
#include "iclab/platform.h"
#include "tomo/clause.h"
#include "tomo/cnf_builder.h"
#include "tomo/engine.h"

using namespace ct;

int main() {
  analysis::ScenarioConfig config = analysis::default_scenario();
  config.platform.num_days = 56;  // 8 weeks is enough for diagnosis
  analysis::Scenario scenario(config);

  tomo::ClauseBuilder builder(scenario.ip2as());
  scenario.platform().run(builder);

  tomo::CnfBuildOptions opts;
  opts.granularities = {util::Granularity::kDay};
  const auto cnfs = tomo::build_cnfs(builder.pool(), builder.clauses(), opts);
  const auto verdicts = tomo::analyze_cnfs(cnfs);

  const auto& graph = scenario.graph();
  std::set<topo::AsId> vantage_set(scenario.platform().vantages().begin(),
                                   scenario.platform().vantages().end());
  std::set<topo::AsId> dest_set(scenario.platform().dest_ases().begin(),
                                scenario.platform().dest_ases().end());
  std::set<topo::AsId> truth;
  for (const auto as : scenario.registry().censor_ases()) truth.insert(as);

  std::map<std::string, int> role_counts;
  int multi = 0, uniq = 0, unsat = 0, shown = 0;
  for (std::size_t i = 0; i < cnfs.size(); ++i) {
    const auto& v = verdicts[i];
    if (v.solution_class == 0) ++unsat;
    if (v.solution_class == 1) ++uniq;
    if (v.solution_class != 2) continue;
    ++multi;
    for (const auto as : v.potential_censors) {
      std::string role;
      if (truth.count(as)) role = "true-censor";
      else if (vantage_set.count(as)) role = "vantage";
      else if (dest_set.count(as)) role = "dest";
      else if (graph.as_info(as).tier == topo::AsTier::kStub) role = "other-stub";
      else if (graph.as_info(as).tier == topo::AsTier::kTier1) role = "tier1";
      else role = "transit";
      ++role_counts[role];
    }
    if (shown < 8) {
      ++shown;
      std::cout << "multi CNF url=" << v.key.url_id << " day=" << v.key.window
                << " anomaly=" << censor::short_label(v.key.anomaly)
                << " vars=" << v.num_vars << " potential=";
      for (const auto as : v.potential_censors) {
        std::string role = truth.count(as) ? "CENSOR" : vantage_set.count(as) ? "VP"
                           : dest_set.count(as)       ? "DEST"
                           : topo::to_string(graph.as_info(as).tier);
        std::cout << " " << graph.as_info(as).asn << "(" << role << ")";
      }
      std::cout << "\n";
      const auto& tc = cnfs[i];
      std::cout << "  positives=" << tc.num_positive_clauses
                << " negunits=" << tc.num_negative_units << "\n";
    }
  }
  std::cout << "\nday CNFs: uniq=" << uniq << " multi=" << multi << " unsat=" << unsat
            << "\npotential-censor roles across multi CNFs:\n";
  for (const auto& [role, count] : role_counts) {
    std::cout << "  " << role << ": " << count << "\n";
  }
  return 0;
}
