// Crash-safe resident monitor daemon (README "Resident monitor &
// checkpoints"): runs the measurement platform as a continuous ingest
// loop on analysis::MonitorEngine, serving LiveReport snapshots to
// concurrent readers, periodically writing resumable checkpoints, and
// finishing with the full experiment report — byte-identical to the
// batch pipeline's, and to itself across any kill/resume sequence.
//
//   $ ./monitor_daemon [flags]
//     --small                small scenario (default: paper-scale year)
//     --seed S               scenario seed
//     --days N | --years N   override the scenario's run length
//     --shards N             platform shards per segment (0 = hardware)
//     --threads N            SAT worker lanes (0 = hardware)
//     --segment-days N       ingest segment length (default 28)
//     --checkpoint FILE      checkpoint file (atomic tmp+rename writes)
//     --checkpoint-every N   cadence in watermark days (default 28)
//     --resume               restore FILE before ingesting (if present)
//     --kill-at DAY          simulate a crash: stop dead at watermark
//                            DAY, exit 3 — no final checkpoint, no
//                            report; resume from the last cadence write
//     --readers N            concurrent LiveReport poller threads
//     --pace-ms MS           live-feed pacing: sleep MS between segments
//     --assert-flat-memory   verify the O(open windows) memory contract
//
// Replay mode (default) ingests as fast as possible; --pace-ms turns
// the same loop into a paced live feed.  The final line prints
// "report-hash <hex>" over the canonical report bytes — the CI smoke
// job compares a straight run against a killed-and-resumed run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checkpoint.h"
#include "analysis/monitor.h"
#include "analysis/report.h"
#include "censor/regime.h"
#include "sat/backend.h"

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--small] [--seed S] [--days N | --years N]\n"
            << "  [--shards N] [--threads N] [--segment-days N]\n"
            << "  [--checkpoint FILE] [--checkpoint-every N] [--resume] [--kill-at DAY]\n"
            << "  [--readers N] [--pace-ms MS] [--assert-flat-memory]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using ct::analysis::MonitorEngine;
  using ct::analysis::MonitorOptions;
  using ct::analysis::MonitorStats;

  ct::analysis::ScenarioConfig config = ct::analysis::default_scenario();
  MonitorOptions options;
  options.experiment.analysis.backend = ct::sat::BackendSelector::from_env();
  options.experiment.analysis.delta = ct::sat::DeltaPolicy::from_env();
  options.checkpoint_every = 28;

  bool resume = false;
  bool assert_flat = false;
  ct::util::Day kill_at = -1;
  int readers = 0;
  int pace_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--small") {
      config = ct::analysis::small_scenario();
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--days") {
      config.platform.num_days = static_cast<ct::util::Day>(std::atoi(next()));
    } else if (arg == "--years") {
      config.platform.num_days = ct::util::kDaysPerYear * std::atoi(next());
    } else if (arg == "--shards") {
      options.experiment.num_platform_shards = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--threads") {
      options.experiment.num_threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--segment-days") {
      options.segment_days = static_cast<ct::util::Day>(std::atoi(next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every = static_cast<ct::util::Day>(std::atoi(next()));
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--kill-at") {
      kill_at = static_cast<ct::util::Day>(std::atoi(next()));
    } else if (arg == "--readers") {
      readers = std::atoi(next());
    } else if (arg == "--pace-ms") {
      pace_ms = std::atoi(next());
    } else if (arg == "--assert-flat-memory") {
      assert_flat = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return usage(argv[0]);
    }
  }

  // Scenario regime from CT_SCENARIO (README "Scenarios"): part of the
  // checkpoint fingerprint, so a checkpoint only resumes under the same
  // regime.
  config.regime = ct::censor::RegimeConfig::from_env(config.regime);

  ct::analysis::Scenario scenario(config);
  MonitorEngine monitor(scenario, options);

  std::cout << "monitor_daemon: seed " << config.seed << ", scenario "
            << ct::censor::to_string(config.regime.regime) << ", " << config.platform.num_days
            << " days, segment " << options.segment_days << "d, shards "
            << options.experiment.num_platform_shards << ", threads "
            << options.experiment.num_threads << ", checkpoint "
            << (options.checkpoint_path.empty() ? "(off)" : options.checkpoint_path)
            << " every " << options.checkpoint_every << "d\n";

  if (resume && !options.checkpoint_path.empty()) {
    try {
      monitor.restore_from(options.checkpoint_path);
      std::cout << "resumed from " << options.checkpoint_path << " at watermark "
                << monitor.watermark() << "\n";
    } catch (const ct::analysis::CheckpointError& e) {
      std::cout << "no usable checkpoint (" << e.what() << "); starting cold\n";
    }
  }

  // Concurrent LiveReport readers: each attaches to the snapshot server
  // and polls until ingest completes, checking watermark monotonicity.
  std::atomic<bool> stop{false};
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(static_cast<std::size_t>(readers));
  for (int rdr = 0; rdr < readers; ++rdr) {
    reader_threads.emplace_back([&monitor, &stop, &reader_failed] {
      ct::analysis::LiveReportServer::Reader reader(monitor.reports());
      ct::util::Day last = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        if (const auto report = reader.snapshot()) {
          if (report->watermark < last) reader_failed.store(true);
          last = report->watermark;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // The resident loop: one segment per iteration (paced when asked),
  // with automatic cadence checkpoints inside run_until.  --kill-at
  // stops the process dead between segments — no teardown checkpoint —
  // exactly what a crash leaves behind.
  const ct::util::Day end =
      kill_at >= 0 ? std::min(kill_at, monitor.num_days()) : monitor.num_days();
  std::int64_t flat_baseline = 0;
  while (monitor.watermark() < end) {
    monitor.run_until(std::min<ct::util::Day>(end, monitor.watermark() + options.segment_days));
    const MonitorStats stats = monitor.stats();
    if (flat_baseline == 0 && stats.segments_ingested >= 2) {
      flat_baseline = stats.retained_clauses_peak;
    }
    std::cout << "watermark " << stats.watermark << "/" << monitor.num_days()
              << "  open-windows " << stats.open_main_windows << "+"
              << stats.open_ablation_windows << "  churn-open " << stats.churn_open_entries
              << "  churn fail/rep/down " << stats.churn_failures << "/" << stats.churn_repairs
              << "/" << stats.churn_links_down << "  retained-peak "
              << stats.retained_clauses_peak << "  reads " << stats.engine.snapshot_reads;
    if (stats.engine.portfolio.races > 0) {
      std::cout << "  races " << stats.engine.portfolio.races << " (wasted "
                << static_cast<int>(100.0 * stats.engine.portfolio.wasted_ratio()) << "%)";
    }
    std::cout << "\n";
    if (pace_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
  }

  if (kill_at >= 0) {
    std::cout << "killed at watermark " << monitor.watermark() << " (simulated crash)\n";
    stop.store(true);
    for (std::thread& t : reader_threads) t.join();
    return 3;
  }

  const ct::analysis::ExperimentResult result = monitor.finalize();
  stop.store(true);
  for (std::thread& t : reader_threads) t.join();

  const MonitorStats stats = monitor.stats();
  std::cout << "\nsegments " << stats.segments_ingested << ", checkpoints "
            << stats.checkpoints_written << ", snapshots " << stats.engine.snapshots_published
            << ", reads " << stats.engine.snapshot_reads << " (stale "
            << stats.engine.snapshot_stale_reads << ", peak readers "
            << stats.engine.snapshot_peak_readers << ")\n"
            << "retained clauses: peak " << stats.retained_clauses_peak << ", now "
            << stats.retained_clauses_now << ", underflows " << stats.gauge_underflows
            << "\n";
  std::cout << ct::analysis::render_headline(result)
            << ct::analysis::render_score(result, scenario)
            << ct::analysis::render_backends(result);

  bool ok = !reader_failed.load();
  if (!ok) std::cerr << "FAIL: a reader observed a watermark regression\n";
  if (assert_flat) {
    // Flat-memory contract: the retained-clause peak must not grow with
    // run length (it is set by segment size), every segment must drain
    // to zero, and the gauge must never underflow.
    if (stats.retained_clauses_now != 0) {
      std::cerr << "FAIL: " << stats.retained_clauses_now << " clauses retained at end\n";
      ok = false;
    }
    if (stats.gauge_underflows != 0) {
      std::cerr << "FAIL: " << stats.gauge_underflows << " gauge underflows\n";
      ok = false;
    }
    if (flat_baseline > 0 && stats.retained_clauses_peak > 2 * flat_baseline) {
      std::cerr << "FAIL: retained-clause peak " << stats.retained_clauses_peak
                << " grew past 2x the two-segment baseline " << flat_baseline
                << " (memory is not flat in run length)\n";
      ok = false;
    }
  }

  std::cout << "report-hash " << std::hex << fnv1a(ct::analysis::serialize_report(result))
            << std::dec << "\n";
  return ok ? 0 : 1;
}
