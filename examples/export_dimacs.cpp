// Exports the tomography CNFs of a simulated run as DIMACS files, so
// they can be fed to any off-the-shelf SAT solver (the paper's workflow:
// "the clauses are converted to CNF and used as input to an
// off-the-shelf SAT solver").
//
//   $ ./export_dimacs [output-dir] [max-files]
//
// Writes one .cnf file per (URL, anomaly, window) with at least one
// positive clause, with a comment header mapping SAT variables back to
// AS numbers.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/scenario.h"
#include "sat/dimacs.h"
#include "tomo/clause.h"
#include "tomo/cnf_builder.h"

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "dimacs_out";
  const std::size_t max_files = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;

  ct::analysis::ScenarioConfig config = ct::analysis::small_scenario();
  ct::analysis::Scenario scenario(config);

  ct::tomo::ClauseBuilder builder(scenario.ip2as());
  scenario.platform().run(builder);
  const auto cnfs = ct::tomo::build_cnfs(builder.pool(), builder.clauses());

  std::filesystem::create_directories(out_dir);
  std::size_t written = 0;
  for (const auto& tc : cnfs) {
    if (written >= max_files) break;
    std::vector<std::string> comments;
    comments.push_back("churntomo CNF: url=" + std::to_string(tc.key.url_id) +
                       " anomaly=" + ct::censor::to_string(tc.key.anomaly) +
                       " window=" + ct::util::window_label(tc.key.window, tc.key.granularity));
    for (std::size_t v = 0; v < tc.vars.size(); ++v) {
      comments.push_back("var " + std::to_string(v + 1) + " = AS" +
                         std::to_string(scenario.graph().as_info(tc.vars[v]).asn));
    }
    const std::string name = "url" + std::to_string(tc.key.url_id) + "_" +
                             ct::censor::short_label(tc.key.anomaly) + "_" +
                             std::string(ct::util::to_string(tc.key.granularity)) +
                             std::to_string(tc.key.window) + ".cnf";
    std::ofstream out(out_dir / name);
    ct::sat::write_dimacs(out, tc.cnf, comments);
    ++written;
  }
  std::cout << "wrote " << written << " DIMACS files (of " << cnfs.size()
            << " CNFs) to " << out_dir << "\n"
            << "solve one with any SAT solver, e.g.: minisat " << out_dir
            << "/<file>.cnf\n";
  return 0;
}
