// Per-regime localization accuracy (README "Scenarios"): runs the same
// world under every scenario regime — baseline, routing-induced
// censorship, ECMP multipath, adaptive censors, path-diversity
// inconsistency — and prints precision/recall of identified_censors vs
// ground truth for each.  This is the "does tomography still localize
// when the assumption breaks?" table archived in EXPERIMENTS.md.
//
//   $ [CT_SAT_BACKEND=...] [CT_SAT_DELTA=...] [CT_PLATFORM_SHARDS=N] \
//       ./accuracy_report [--small] [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/report.h"
#include "censor/regime.h"
#include "sat/backend.h"

int main(int argc, char** argv) {
  ct::analysis::ScenarioConfig base = ct::analysis::default_scenario();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      base = ct::analysis::small_scenario();
    } else {
      base.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  ct::analysis::ExperimentOptions options;
  options.analysis.backend = ct::sat::BackendSelector::from_env();
  options.analysis.delta = ct::sat::DeltaPolicy::from_env();

  std::cout << "churntomo accuracy report: seed " << base.seed << ", "
            << base.topology.num_ases << " ASes, " << base.platform.num_days
            << " days per regime\n\n";

  std::vector<ct::analysis::RegimeAccuracyRow> rows;
  for (const ct::censor::ScenarioRegime regime : ct::censor::all_regimes()) {
    ct::analysis::ScenarioConfig config = base;
    config.regime.regime = regime;
    ct::analysis::Scenario scenario(config);
    const ct::analysis::ExperimentResult result =
        ct::analysis::run_experiment(scenario, options);
    rows.push_back(ct::analysis::make_accuracy_row(result, scenario));
    std::cout << ct::censor::to_string(regime) << ": done (" << result.total_cnfs
              << " CNFs)\n";
  }

  std::cout << "\n" << ct::analysis::render_regime_accuracy(rows);
  return 0;
}
