// Full evaluation report on the default (year-scale) scenario: every
// table and figure of the paper, plus ground-truth validation.  Also
// drops plot-ready CSV series for each figure.
//
//   $ [CT_SAT_BACKEND={auto,cdcl,count,unitprop}] [CT_SAT_DELTA={0,1}] \
//       [CT_SCENARIO={baseline,routing,multipath,adaptive,pathdiv}] \
//       ./full_report [seed] [csv-dir]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "analysis/csv_export.h"
#include "analysis/experiment.h"
#include "analysis/report.h"
#include "censor/regime.h"
#include "sat/backend.h"

int main(int argc, char** argv) {
  ct::analysis::ScenarioConfig config = ct::analysis::default_scenario();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  config.regime = ct::censor::RegimeConfig::from_env(config.regime);

  ct::analysis::ExperimentOptions options;
  options.analysis.backend = ct::sat::BackendSelector::from_env();
  options.analysis.delta = ct::sat::DeltaPolicy::from_env();

  std::cout << "churntomo full report: seed " << config.seed << ", scenario "
            << ct::censor::to_string(config.regime.regime) << ", "
            << config.topology.num_ases << " ASes, " << config.platform.num_vantages
            << " vantage ASes x " << config.platform.vp_nodes_per_as << " nodes, "
            << config.platform.num_urls << " URLs, " << config.platform.num_days
            << " days, SAT backend "
            << ct::sat::BackendSelector::to_string(options.analysis.backend.mode)
            << ", delta loading " << (options.analysis.delta.enabled ? "on" : "off")
            << "\n\n";

  ct::analysis::Scenario scenario(config);
  const ct::analysis::ExperimentResult result =
      ct::analysis::run_experiment(scenario, options);
  std::cout << ct::analysis::render_all(result, scenario);

  const std::string csv_dir = argc > 2 ? argv[2] : "report_csv";
  const int files = ct::analysis::write_all_csv(csv_dir, result);
  std::cout << "\nwrote " << files << " CSV series to " << csv_dir << "/\n";
  return 0;
}
