// Censorship-leakage case study (paper §3.3 / Table 3 / Figure 5).
//
//   $ ./leakage_study [seed]
//
// Runs the pipeline on the small scenario and then walks one identified
// leaking censor end to end: its policies (ground truth), the CNF
// evidence that identified it, and the victim ASes/countries that
// inherited its filtering.
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/report.h"

int main(int argc, char** argv) {
  // A mid-size world: big enough for transit censors with upstream
  // victims, small enough to run in a few seconds.
  ct::analysis::ScenarioConfig config = ct::analysis::small_scenario();
  config.topology.num_ases = 260;
  config.topology.num_transit = 50;
  config.topology.num_countries = 30;
  config.censors.num_censors = 22;
  config.platform.num_vantages = 30;
  config.platform.num_urls = 45;
  config.platform.num_dest_ases = 25;
  config.platform.num_days = 16 * ct::util::kDaysPerWeek;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  ct::analysis::Scenario scenario(config);
  const auto result = ct::analysis::run_experiment(scenario);
  const auto& graph = scenario.graph();

  std::cout << ct::analysis::render_table3(result) << "\n"
            << ct::analysis::render_fig5(result) << "\n";

  // Walk the biggest leaker in detail.
  const ct::tomo::CensorLeaks* biggest = nullptr;
  for (const auto& [censor, leaks] : result.leakage.by_censor) {
    if (!biggest || leaks.victim_ases.size() > biggest->victim_ases.size()) {
      biggest = &leaks;
    }
  }
  if (!biggest) {
    std::cout << "No leaking censor identified in this run; try another seed.\n";
    return 0;
  }

  const auto censor = biggest->censor;
  std::cout << "Case study: AS" << graph.as_info(censor).asn << " ("
            << graph.country_of(censor).code << ", "
            << ct::topo::to_string(graph.as_info(censor).tier) << ")\n";
  std::cout << "  ground-truth policies:\n";
  for (const auto& policy : scenario.registry().policies()) {
    if (policy.censor != censor) continue;
    std::cout << "    days [" << policy.active_from << ", " << policy.active_to << "):";
    for (const auto c : policy.categories) std::cout << " '" << ct::censor::to_string(c) << "'";
    std::cout << " via";
    for (const auto a : policy.anomalies) std::cout << " " << ct::censor::to_string(a);
    std::cout << "\n";
  }
  std::cout << "  victims (ASes whose traffic inherited the filtering):\n";
  for (const auto victim : biggest->victim_ases) {
    std::cout << "    AS" << graph.as_info(victim).asn << " ("
              << graph.country_of(victim).code << ")\n";
  }
  std::cout << "  victim countries: " << biggest->victim_countries.size() << "\n";
  return 0;
}
