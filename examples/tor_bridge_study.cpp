// Future-work extension (paper §5): localizing the ASes that block
// access to Tor bridges.
//
//   $ ./tor_bridge_study [seed]
//
// Bridges are modeled as URLs in the 'Circumvention' category hosted in
// ordinary content ASes; bridge-blocking censors drop/reset connections
// to them (RST + SEQNO signatures).  The unchanged tomography pipeline
// then localizes the blocking ASes — demonstrating that the method
// carries over from web censorship to circumvention-infrastructure
// blocking exactly as the paper projects.
#include <cstdlib>
#include <iostream>
#include <set>

#include "analysis/experiment.h"
#include "analysis/report.h"

int main(int argc, char** argv) {
  ct::analysis::ScenarioConfig config = ct::analysis::small_scenario();
  config.topology.num_ases = 260;
  config.topology.num_transit = 50;
  config.topology.num_countries = 30;
  config.platform.num_vantages = 30;
  config.platform.num_urls = 40;
  config.platform.num_dest_ases = 20;
  config.platform.num_days = 12 * ct::util::kDaysPerWeek;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  // Every censor blocks circumvention infrastructure via connection
  // resets / sequence tampering — the signatures bridge blocking shows.
  config.censors.num_censors = 0;  // replaced by explicit policies below
  ct::analysis::Scenario probe(config);  // topology + endpoints only

  // Hand-plant bridge blockers on transit ASes of the topology.
  ct::censor::CensorConfig censors;
  censors.num_censors = 14;
  censors.transit_censor_fraction = 1.0;
  censors.extra_category_prob = 0.0;  // exactly one category...
  censors.extra_anomaly_prob = 0.5;
  auto registry = ct::censor::generate_censors(probe.graph(), censors, config.seed + 1);
  std::vector<ct::censor::CensorPolicy> policies;
  for (auto policy : registry.policies()) {
    policy.categories = {ct::censor::UrlCategory::kCircumvention};
    policy.anomalies = {ct::censor::Anomaly::kRst, ct::censor::Anomaly::kSeqno};
    policies.push_back(std::move(policy));
  }
  const ct::censor::CensorRegistry bridge_blockers(probe.graph().num_ases(),
                                                   std::move(policies));

  // Bridges: rebrand the URL list as bridge endpoints, all in the
  // circumvention category.
  ct::iclab::Endpoints endpoints =
      ct::iclab::choose_endpoints(probe.graph(), config.platform, config.seed);
  for (auto& url : endpoints.urls) {
    url.category = ct::censor::UrlCategory::kCircumvention;
    url.name = "bridge-" + std::to_string(url.id) + ".onion-ish";
  }

  ct::iclab::Platform platform(probe.graph(), bridge_blockers, probe.plan(),
                               config.platform, config.seed, endpoints);
  ct::tomo::ClauseBuilder builder(probe.ip2as());
  platform.run(builder);
  const auto cnfs = ct::tomo::build_cnfs(builder.pool(), builder.clauses());
  const auto verdicts = ct::tomo::analyze_cnfs(cnfs);
  const auto identified = ct::tomo::identified_censors(verdicts, 2);

  const auto truth = bridge_blockers.censor_ases();
  const auto score = ct::tomo::score_censors(identified, truth);
  std::cout << "Tor-bridge blocking localization (future-work extension)\n"
            << "  bridges monitored        : " << endpoints.urls.size() << "\n"
            << "  planted bridge blockers  : " << truth.size() << "\n"
            << "  CNFs analyzed            : " << cnfs.size() << "\n"
            << "  blockers identified      : " << identified.size() << "\n"
            << "  precision                : " << score.precision() << "\n"
            << "  recall                   : " << score.recall() << "\n\n";
  std::cout << "identified blocking ASes:\n";
  const std::set<ct::topo::AsId> truth_set(truth.begin(), truth.end());
  for (const auto as : identified) {
    std::cout << "  AS" << probe.graph().as_info(as).asn << " ("
              << probe.graph().country_of(as).code << ") "
              << (truth_set.count(as) ? "[true blocker]" : "[FALSE POSITIVE]") << "\n";
  }
  return 0;
}
